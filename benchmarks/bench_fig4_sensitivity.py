"""Figure 4 — Sensitivity of execution overheads to potential future
attacks.

Paper (Section 4.5): against future modules flipping at 110K accesses,
ANVIL-heavy (2 ms windows) and ANVIL-light (10K threshold) cost only
slightly more than the baseline on {bzip2, gcc, gobmk, libquantum,
perlbench}; "decreasing the last-level miss sample period to 2 ms has the
larger performance impact, which is expected as the sampling overheads
are experienced continuously".

The (config x benchmark) grid runs through the sweep runner: one
:func:`repro.sim.epoch.run_epoch_cell` job per cell, seeds derived from
``ROOT_SEED``, parallel under ``--jobs N`` with bit-identical results.
"""

from __future__ import annotations

from repro.analysis import format_figure_series
from repro.core import AnvilConfig
from repro.runner import Job, derive_seed
from repro.sim.epoch import run_epoch_cell

from _common import publish, sweep_runner

BENCHMARKS = ("bzip2", "gcc", "gobmk", "libquantum", "perlbench")
HORIZON_S = 60.0
ROOT_SEED = 19

CONFIGS = (
    ("ANVIL-baseline", AnvilConfig.baseline()),
    ("ANVIL-light", AnvilConfig.light()),
    ("ANVIL-heavy", AnvilConfig.heavy()),
)


def fig4_jobs() -> list[Job]:
    # One derived seed per *benchmark*, shared by its three configs: the
    # paper's sensitivity claims are paired comparisons (light/heavy vs
    # baseline over the same miss-stream draws), so the configs must see
    # identical window sequences.
    return [
        Job.of(
            run_epoch_cell,
            key=f"fig4/{config_name}/{name}",
            seed=derive_seed(ROOT_SEED, f"fig4/{name}"),
            benchmark=name,
            config=config,
            config_name=config_name,
            horizon_s=HORIZON_S,
        )
        for config_name, config in CONFIGS
        for name in BENCHMARKS
    ]


def run_fig4(jobs: int | None = None) -> dict[str, dict[str, float]]:
    results = sweep_runner(ROOT_SEED, jobs=jobs).values(fig4_jobs())
    series: dict[str, dict[str, float]] = {}
    for result in results:
        series.setdefault(result.config_name, {})[result.benchmark] = (
            result.normalized_time
        )
    return series


def test_fig4_sensitivity(benchmark):
    series = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    text = format_figure_series(
        "Figure 4 - Normalized execution time under baseline/light/heavy "
        "(paper range: 1.00-1.08)",
        series,
        bar_scale=(0.99, 1.09),
    )
    publish("fig4_sensitivity", text)
    base = series["ANVIL-baseline"]
    light = series["ANVIL-light"]
    heavy = series["ANVIL-heavy"]
    for name in BENCHMARKS:
        # Detecting nimbler attacks costs more, but only slightly
        # ("ANVIL has room to grow"): nothing above ~8%.
        assert max(light[name], heavy[name]) < 1.08
        # The halved threshold can only increase stage-1 triggering.
        assert light[name] >= base[name] - 1e-9
    # Heavy keeps the 20K threshold over 2 ms windows: the always-missing
    # benchmark still pays full sampling duty (plus 3x the fixed window
    # costs), while mid-rate benchmarks trigger *less* — a modelling
    # deviation from Figure 4 recorded in EXPERIMENTS.md.
    assert heavy["libquantum"] >= base["libquantum"] - 1e-9
    assert light["gcc"] > base["gcc"]
