"""Figure 3 — ANVIL's impact on non-malicious programs.

Normalized execution time for the 12 SPEC2006 integer benchmarks under
(a) ANVIL-baseline and (b) the doubled-refresh mitigation, both relative
to an unprotected 64 ms-refresh system.  Paper headline numbers: ANVIL
peak 3.18%, average 1.17%; double refresh hurts memory-intensive
workloads (mcf) most while ANVIL's cost concentrates on the benchmarks
that cross the stage-1 threshold 95-99% of the time.
"""

from __future__ import annotations

from repro.analysis import format_figure_series
from repro.analysis.metrics import normalized_times_summary
from repro.core import AnvilConfig
from repro.sim.epoch import EpochModel, double_refresh_normalized_time
from repro.workloads import SPEC2006_INT

from _common import publish

HORIZON_S = 60.0
HIGH_TRIGGER = ("libquantum", "mcf", "omnetpp", "xalancbmk")
LOW_TRIGGER = ("h264ref", "gobmk", "sjeng", "hmmer")


def run_fig3() -> dict[str, dict[str, float]]:
    anvil: dict[str, float] = {}
    double: dict[str, float] = {}
    triggers: dict[str, float] = {}
    for name, profile in SPEC2006_INT.items():
        result = EpochModel(profile, AnvilConfig.baseline(), seed=17).run(HORIZON_S)
        anvil[name] = result.normalized_time
        double[name] = double_refresh_normalized_time(profile)
        triggers[name] = result.trigger_fraction
    return {"ANVIL": anvil, "Double Refresh": double, "_triggers": triggers}


def test_fig3_overhead(benchmark):
    series = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    triggers = series.pop("_triggers")
    summary = normalized_times_summary(series["ANVIL"])
    text = format_figure_series(
        "Figure 3 - Normalized execution time (1.0 = unprotected @64 ms)",
        series,
        bar_scale=(0.99, 1.06),
    )
    text += (
        f"\n\nANVIL average slowdown {summary['average_slowdown']:.2%} "
        f"(paper 1.17%), peak {summary['peak_slowdown']:.2%} (paper 3.18%)\n"
    )
    publish(
        "fig3_overhead",
        text,
        data={"series": series, "triggers": triggers, "summary": summary},
    )

    anvil = series["ANVIL"]
    # Stage-1 trigger groups reproduce Section 4.3.
    assert all(triggers[name] > 0.9 for name in HIGH_TRIGGER)
    assert all(triggers[name] < 0.1 for name in LOW_TRIGGER)
    # Overheads: ~1% average, <4.5% everywhere, sampling dominates.
    assert summary["average_slowdown"] < 0.02
    assert summary["peak_slowdown"] < 0.045
    assert all(anvil[h] > anvil[l] for h in HIGH_TRIGGER for l in LOW_TRIGGER)
    # mcf suffers most from double refresh (Section 4.4).
    dbl = series["Double Refresh"]
    assert dbl["mcf"] == max(dbl.values())
    # ANVIL's average cost is only marginally above double refresh.
    dbl_summary = normalized_times_summary(dbl)
    assert summary["average_slowdown"] < dbl_summary["average_slowdown"] + 0.015
