"""Figure 3 — ANVIL's impact on non-malicious programs.

Normalized execution time for the 12 SPEC2006 integer benchmarks under
(a) ANVIL-baseline and (b) the doubled-refresh mitigation, both relative
to an unprotected 64 ms-refresh system.  Paper headline numbers: ANVIL
peak 3.18%, average 1.17%; double refresh hurts memory-intensive
workloads (mcf) most while ANVIL's cost concentrates on the benchmarks
that cross the stage-1 threshold 95-99% of the time.

The 12 epoch cells run through the sweep runner with per-benchmark seeds
derived from ``ROOT_SEED`` (double-refresh times are closed-form, so they
need no cells).
"""

from __future__ import annotations

from repro.analysis import format_figure_series
from repro.analysis.metrics import normalized_times_summary
from repro.runner import Job
from repro.sim.epoch import double_refresh_normalized_time, run_epoch_cell
from repro.workloads import SPEC2006_INT, spec_profile

from _common import publish, sweep_runner

HORIZON_S = 60.0
ROOT_SEED = 17
HIGH_TRIGGER = ("libquantum", "mcf", "omnetpp", "xalancbmk")
LOW_TRIGGER = ("h264ref", "gobmk", "sjeng", "hmmer")


def fig3_jobs() -> list[Job]:
    return [
        Job.of(
            run_epoch_cell,
            key=f"fig3/{name}",
            benchmark=name,
            horizon_s=HORIZON_S,
        )
        for name in SPEC2006_INT
    ]


def run_fig3(jobs: int | None = None) -> dict[str, dict[str, float]]:
    results = sweep_runner(ROOT_SEED, jobs=jobs).values(fig3_jobs())
    anvil: dict[str, float] = {}
    double: dict[str, float] = {}
    triggers: dict[str, float] = {}
    for result in results:
        name = result.benchmark
        anvil[name] = result.normalized_time
        double[name] = double_refresh_normalized_time(spec_profile(name))
        triggers[name] = result.trigger_fraction
    return {"ANVIL": anvil, "Double Refresh": double, "_triggers": triggers}


def test_fig3_overhead(benchmark):
    series = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    triggers = series.pop("_triggers")
    summary = normalized_times_summary(series["ANVIL"])
    text = format_figure_series(
        "Figure 3 - Normalized execution time (1.0 = unprotected @64 ms)",
        series,
        bar_scale=(0.99, 1.06),
    )
    text += (
        f"\n\nANVIL average slowdown {summary['average_slowdown']:.2%} "
        f"(paper 1.17%), peak {summary['peak_slowdown']:.2%} (paper 3.18%)\n"
    )
    publish(
        "fig3_overhead",
        text,
        data={"series": series, "triggers": triggers, "summary": summary},
    )

    anvil = series["ANVIL"]
    # Stage-1 trigger groups reproduce Section 4.3.
    assert all(triggers[name] > 0.9 for name in HIGH_TRIGGER)
    assert all(triggers[name] < 0.1 for name in LOW_TRIGGER)
    # Overheads: ~1% average, <4.5% everywhere, sampling dominates.
    assert summary["average_slowdown"] < 0.02
    assert summary["peak_slowdown"] < 0.045
    assert all(anvil[h] > anvil[l] for h in HIGH_TRIGGER for l in LOW_TRIGGER)
    # mcf suffers most from double refresh (Section 4.4).
    dbl = series["Double Refresh"]
    assert dbl["mcf"] == max(dbl.values())
    # ANVIL's average cost is only marginally above double refresh.
    dbl_summary = normalized_times_summary(dbl)
    assert summary["average_slowdown"] < dbl_summary["average_slowdown"] + 0.015
