"""Sweep-runner performance benchmark: parallel vs serial execution.

Runs the same epoch-model grid three ways and proves the runner's core
contract on every measured run:

1. **serial** — ``SweepRunner(jobs=1)``, no cache: the reference ordering.
2. **parallel** — ``SweepRunner(jobs=4)``, no cache: must return the
   *identical* result list (per-job seeds derive from the root seed, not
   from worker identity, so results are bit-identical at any worker
   count).
3. **cached** — cold run populates the on-disk cache, warm run must
   execute **zero** cells and replay every value from disk.

The speedup gate (>= 2.5x at 4 workers) is enforced only on machines
with at least 4 CPUs — process-pool fan-out cannot beat serial on a
single core — and never under ``--smoke``; the measured numbers and the
enforcement decision are always recorded in ``BENCH_sweep.json`` at the
repository root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_perf_sweep.py            # full
    PYTHONPATH=src python benchmarks/bench_perf_sweep.py --smoke    # quick
    PYTHONPATH=src python benchmarks/bench_perf_sweep.py --jobs 8
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.runner import Job, ResultCache, SweepRunner, derive_seed
from repro.sim.epoch import run_epoch_cell
from repro.workloads import SPEC2006_INT

from _common import CACHE_DIR, publish

ROOT_SEED = 47
GATE_SPEEDUP = 2.5
GATE_MIN_CPUS = 4


def sweep_jobs(horizon_s: float) -> list[Job]:
    return [
        Job.of(
            run_epoch_cell,
            key=f"perf/{name}",
            seed=derive_seed(ROOT_SEED, f"perf/{name}"),
            benchmark=name,
            horizon_s=horizon_s,
        )
        for name in SPEC2006_INT
    ]


def timed_run(cells: list[Job], jobs: int) -> tuple[list, dict, float]:
    runner = SweepRunner(jobs=jobs, root_seed=ROOT_SEED, cache=None)
    start = time.perf_counter()
    results = runner.run(cells)
    return results, runner.last_stats, time.perf_counter() - start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid, no perf gate")
    parser.add_argument("--no-gate", action="store_true",
                        help="measure but do not enforce the speedup gate")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the parallel run (default 4)")
    parser.add_argument("--horizon", type=float, default=60.0,
                        help="simulated seconds per epoch cell")
    args = parser.parse_args(argv)

    horizon = 5.0 if args.smoke else args.horizon
    cells = sweep_jobs(horizon)

    serial_results, serial_stats, t_serial = timed_run(cells, jobs=1)
    parallel_results, parallel_stats, t_parallel = timed_run(cells, jobs=args.jobs)

    assert serial_results == parallel_results, (
        "parallel sweep must be bit-identical to serial"
    )
    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")

    # Cache contract: cold run executes everything, warm run nothing.
    cache = ResultCache(CACHE_DIR / "perf_sweep")
    cache.clear()
    cold_runner = SweepRunner(jobs=1, root_seed=ROOT_SEED, cache=cache)
    cold_results = cold_runner.run(cells)
    cold_stats = dict(cold_runner.last_stats)
    warm_runner = SweepRunner(jobs=1, root_seed=ROOT_SEED, cache=cache)
    warm_results = warm_runner.run(cells)
    warm_stats = dict(warm_runner.last_stats)
    assert cold_stats["executed"] == len(cells)
    assert warm_stats["executed"] == 0, "warm cache run must execute nothing"
    assert warm_stats["cache_hits"] == len(cells)
    assert warm_results == cold_results == serial_results
    cache.clear()

    cpus = os.cpu_count() or 1
    pool_started = parallel_stats["mode"] == "parallel"
    gate_on = (not args.smoke and not args.no_gate
               and pool_started and cpus >= GATE_MIN_CPUS)

    lines = [
        f"sweep grid: {len(cells)} epoch cells, horizon {horizon:.0f}s",
        f"serial   ({serial_stats['mode']}):   {t_serial:8.2f}s",
        f"parallel ({parallel_stats['mode']}, {parallel_stats['workers']} "
        f"workers): {t_parallel:8.2f}s",
        f"speedup: {speedup:.2f}x  (gate {GATE_SPEEDUP}x "
        + ("ENFORCED" if gate_on else
           f"not enforced: cpus={cpus}, mode={parallel_stats['mode']}"
           + (", smoke" if args.smoke else "")),
        f"cache: cold executed {cold_stats['executed']}, "
        f"warm executed {warm_stats['executed']} "
        f"(hits {warm_stats['cache_hits']}/{len(cells)})",
        "results: parallel == serial == cached (elementwise)",
    ]
    text = "\n".join(lines) + "\n"
    print(text)
    publish("perf_sweep", text)

    data = {
        "mode": "smoke" if args.smoke else "full",
        "cells": len(cells),
        "horizon_s": horizon,
        "cpu_count": cpus,
        "workers_requested": args.jobs,
        "parallel_mode": parallel_stats["mode"],
        "serial_s": round(t_serial, 4),
        "parallel_s": round(t_parallel, 4),
        "speedup": round(speedup, 3),
        "results_equal": True,
        "cache": {
            "cold_executed": cold_stats["executed"],
            "warm_executed": warm_stats["executed"],
            "warm_hits": warm_stats["cache_hits"],
        },
        "gate": {
            "speedup": GATE_SPEEDUP,
            "min_cpus": GATE_MIN_CPUS,
            "enforced": gate_on,
        },
    }
    (REPO_ROOT / "BENCH_sweep.json").write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n"
    )

    if gate_on and speedup < GATE_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x below gate {GATE_SPEEDUP}x",
              file=sys.stderr)
        return 1
    return 0


def test_perf_sweep_smoke():
    """Pytest entry: tiny grid, equivalence + cache contract, no perf gate."""
    assert main(["--smoke"]) == 0


if __name__ == "__main__":
    sys.exit(main())
