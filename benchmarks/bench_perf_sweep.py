"""Sweep-runner performance benchmark: parallel vs serial execution,
plus prefix-sharing warm start.

Runs the same epoch-model grid three ways and proves the runner's core
contract on every measured run:

1. **serial** — ``SweepRunner(jobs=1)``, no cache: the reference ordering.
2. **parallel** — ``SweepRunner(jobs=4)``, no cache: must return the
   *identical* result list (per-job seeds derive from the root seed, not
   from worker identity, so results are bit-identical at any worker
   count).
3. **cached** — cold run populates the on-disk cache, warm run must
   execute **zero** cells and replay every value from disk.

A second grid exercises the **warm-start** tier: every cell forks a
shared machine-warmup :class:`Prefix` (executed once, snapshotted,
restored per cell) and the forked results must be bit-identical to cold
per-cell execution (``REPRO_SNAPSHOT=0``) on the serial, process, and
TCP backends.  The measured warm-vs-cold speedup carries its own gate
(>= 3x).

The speedup gates (>= 2.5x at 4 workers; >= 3x warm start) are enforced
only on machines with at least 4 CPUs — process-pool fan-out cannot
beat serial on a single core — and never under ``--smoke``; the
measured numbers and the enforcement decisions are always recorded in
``BENCH_sweep.json`` at the repository root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_perf_sweep.py            # full
    PYTHONPATH=src python benchmarks/bench_perf_sweep.py --smoke    # quick
    PYTHONPATH=src python benchmarks/bench_perf_sweep.py --jobs 8
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.presets import small_machine
from repro.runner import (
    Job,
    Prefix,
    ResultCache,
    SNAPSHOT_ENV,
    SweepRunner,
    derive_seed,
    start_thread_worker,
)
from repro.runner.backends.base import _reset_prefix_memo
from repro.sim.epoch import run_epoch_cell
from repro.workloads import SPEC2006_INT, HammerWorkload

from _common import CACHE_DIR, publish

ROOT_SEED = 47
GATE_SPEEDUP = 2.5
GATE_MIN_CPUS = 4
WARM_GATE_SPEEDUP = 3.0


def sweep_jobs(horizon_s: float) -> list[Job]:
    return [
        Job.of(
            run_epoch_cell,
            key=f"perf/{name}",
            seed=derive_seed(ROOT_SEED, f"perf/{name}"),
            benchmark=name,
            horizon_s=horizon_s,
        )
        for name in SPEC2006_INT
    ]


def timed_run(cells: list[Job], jobs: int) -> tuple[list, dict, float]:
    runner = SweepRunner(jobs=jobs, root_seed=ROOT_SEED, cache=None)
    start = time.perf_counter()
    results = runner.run(cells)
    return results, runner.last_stats, time.perf_counter() - start


# -- warm-start grid: cells forking a shared machine-warmup prefix -------------


def warm_prefix(threshold_min: int, warm_cycles: int, seed: int = 0):
    """Shared warmup stage: a machine hammered to the divergence point."""
    machine = small_machine(threshold_min=threshold_min, seed=seed)
    workload = HammerWorkload(aggressors=2, think_cycles=120, seed=seed)
    workload.prepare(machine)
    machine.run_fast(workload.ops(), max_cycles=warm_cycles)
    return machine


def warm_tail_cell(think_cycles: int, tail_cycles: int, prefix, seed: int = 0):
    """Divergent tail: a fresh workload on the forked warm machine."""
    machine = prefix
    workload = HammerWorkload(aggressors=2, think_cycles=think_cycles,
                              seed=seed)
    workload.prepare(machine)
    result = machine.run_fast(workload.ops(), max_cycles=tail_cycles)
    return (machine.cycles, result.ops_executed, result.loads,
            result.llc_misses, result.dram_accesses, result.overhead_cycles,
            machine.memory.flip_count())


def warm_jobs(warm_cycles: int, tail_cycles: int, n_cells: int) -> list[Job]:
    pre = Prefix.of("bench_perf_sweep:warm_prefix",
                    threshold_min=20_000, warm_cycles=warm_cycles)
    return [
        Job.of("bench_perf_sweep:warm_tail_cell", key=f"warm/{think}",
               prefix=pre, think_cycles=think, tail_cycles=tail_cycles)
        for think in range(120, 120 + 24 * n_cells, 24)
    ]


def timed_warm_run(cells: list[Job], snapshots: bool, backend: str = "serial",
                   **kwargs) -> tuple[list, dict, float]:
    """One sweep with the snapshot knob pinned on or off, fresh memo."""
    _reset_prefix_memo()
    os.environ[SNAPSHOT_ENV] = "1" if snapshots else "0"
    try:
        runner = SweepRunner(root_seed=ROOT_SEED, cache=None,
                             backend=backend, **kwargs)
        start = time.perf_counter()
        results = runner.run(cells)
        return results, runner.last_stats, time.perf_counter() - start
    finally:
        os.environ.pop(SNAPSHOT_ENV, None)
        _reset_prefix_memo()


def warm_start_section(smoke: bool) -> tuple[dict, list[str]]:
    """Measure warm-vs-cold and prove 3-backend bit-identity."""
    if smoke:
        cells = warm_jobs(warm_cycles=1_000_000, tail_cycles=200_000, n_cells=3)
    else:
        cells = warm_jobs(warm_cycles=8_000_000, tail_cycles=400_000, n_cells=8)

    cold, _, t_cold = timed_warm_run(cells, snapshots=False, jobs=1)
    warm, warm_stats, t_warm = timed_warm_run(cells, snapshots=True, jobs=1)
    assert warm == cold, "warm-started sweep must be bit-identical to cold"
    assert warm_stats["prefix_groups"] == 1

    # Conformance: the forked results survive process and wire transport.
    proc, _, _ = timed_warm_run(cells, snapshots=True, backend="process",
                                jobs=2)
    assert proc == cold, "process warm start must match cold serial"
    addr1, stop1 = start_thread_worker()
    addr2, stop2 = start_thread_worker()
    try:
        tcp, _, _ = timed_warm_run(cells, snapshots=True, backend="tcp",
                                   workers=[addr1, addr2], jobs=2)
    finally:
        stop1()
        stop2()
    assert tcp == cold, "tcp warm start must match cold serial"

    # Snapshot cache: first sweep stores the warm context, a new grid
    # sharing the prefix replays it from disk.
    cache = ResultCache(CACHE_DIR / "perf_sweep_warm")
    cache.clear()
    _reset_prefix_memo()
    store_runner = SweepRunner(jobs=1, root_seed=ROOT_SEED, cache=cache)
    store_runner.run(cells[:2])
    _reset_prefix_memo()
    hit_runner = SweepRunner(jobs=1, root_seed=ROOT_SEED, cache=cache)
    hit_runner.run(cells[2:])
    snap_stats = {
        "snapshot_hits": hit_runner.last_stats["snapshot_hits"],
        "snapshot_misses": store_runner.last_stats["snapshot_misses"],
        "snapshot_stores": store_runner.last_stats["snapshot_stores"],
    }
    assert snap_stats["snapshot_stores"] == 1, "first sweep must store the blob"
    assert snap_stats["snapshot_hits"] == 1, "prefix snapshot must hit on disk"
    cache.clear()
    _reset_prefix_memo()

    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    data = {
        "cells": len(cells),
        "cold_serial_s": round(t_cold, 4),
        "warm_serial_s": round(t_warm, 4),
        "speedup": round(speedup, 3),
        "prefix_groups": warm_stats["prefix_groups"],
        "results_equal": True,
        "backends_conform": ["serial", "process", "tcp"],
        "cache": snap_stats,
    }
    lines = [
        f"warm-start grid: {len(cells)} cells, 1 shared prefix",
        f"cold serial: {t_cold:8.2f}s   warm serial: {t_warm:8.2f}s"
        f"   speedup: {speedup:.2f}x",
        "warm == cold on serial, process, tcp (elementwise)",
        f"snapshot cache: hits {snap_stats['snapshot_hits']}, "
        f"misses {snap_stats['snapshot_misses']}, "
        f"stores {snap_stats['snapshot_stores']}",
    ]
    return data, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid, no perf gate")
    parser.add_argument("--no-gate", action="store_true",
                        help="measure but do not enforce the speedup gate")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the parallel run (default 4)")
    parser.add_argument("--horizon", type=float, default=60.0,
                        help="simulated seconds per epoch cell")
    args = parser.parse_args(argv)

    horizon = 5.0 if args.smoke else args.horizon
    cells = sweep_jobs(horizon)

    serial_results, serial_stats, t_serial = timed_run(cells, jobs=1)
    parallel_results, parallel_stats, t_parallel = timed_run(cells, jobs=args.jobs)

    assert serial_results == parallel_results, (
        "parallel sweep must be bit-identical to serial"
    )
    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")

    # Cache contract: cold run executes everything, warm run nothing.
    cache = ResultCache(CACHE_DIR / "perf_sweep")
    cache.clear()
    cold_runner = SweepRunner(jobs=1, root_seed=ROOT_SEED, cache=cache)
    cold_results = cold_runner.run(cells)
    cold_stats = dict(cold_runner.last_stats)
    warm_runner = SweepRunner(jobs=1, root_seed=ROOT_SEED, cache=cache)
    warm_results = warm_runner.run(cells)
    warm_stats = dict(warm_runner.last_stats)
    assert cold_stats["executed"] == len(cells)
    assert warm_stats["executed"] == 0, "warm cache run must execute nothing"
    assert warm_stats["cache_hits"] == len(cells)
    assert warm_results == cold_results == serial_results
    cache.clear()

    warm_data, warm_lines = warm_start_section(args.smoke)

    cpus = os.cpu_count() or 1
    pool_started = parallel_stats["mode"] == "parallel"
    gate_on = (not args.smoke and not args.no_gate
               and pool_started and cpus >= GATE_MIN_CPUS)
    warm_gate_on = (not args.smoke and not args.no_gate
                    and cpus >= GATE_MIN_CPUS)

    lines = [
        f"sweep grid: {len(cells)} epoch cells, horizon {horizon:.0f}s",
        f"serial   ({serial_stats['mode']}):   {t_serial:8.2f}s",
        f"parallel ({parallel_stats['mode']}, {parallel_stats['workers']} "
        f"workers): {t_parallel:8.2f}s",
        f"speedup: {speedup:.2f}x  (gate {GATE_SPEEDUP}x "
        + ("ENFORCED" if gate_on else
           f"not enforced: cpus={cpus}, mode={parallel_stats['mode']}"
           + (", smoke" if args.smoke else "")),
        f"cache: cold executed {cold_stats['executed']}, "
        f"warm executed {warm_stats['executed']} "
        f"(hits {warm_stats['cache_hits']}/{len(cells)})",
        "results: parallel == serial == cached (elementwise)",
    ]
    lines += warm_lines
    lines.append(
        f"warm-start speedup: {warm_data['speedup']:.2f}x  "
        f"(gate {WARM_GATE_SPEEDUP}x "
        + ("ENFORCED)" if warm_gate_on else
           f"not enforced: cpus={cpus}"
           + (", smoke)" if args.smoke else ")")))
    text = "\n".join(lines) + "\n"
    print(text)
    publish("perf_sweep", text)

    data = {
        "mode": "smoke" if args.smoke else "full",
        "cells": len(cells),
        "horizon_s": horizon,
        "cpu_count": cpus,
        "workers_requested": args.jobs,
        "parallel_mode": parallel_stats["mode"],
        "serial_s": round(t_serial, 4),
        "parallel_s": round(t_parallel, 4),
        "speedup": round(speedup, 3),
        "results_equal": True,
        "cache": {
            "cold_executed": cold_stats["executed"],
            "warm_executed": warm_stats["executed"],
            "warm_hits": warm_stats["cache_hits"],
            **warm_data["cache"],
        },
        "warm_start": {
            **warm_data,
            "gate": {
                "speedup": WARM_GATE_SPEEDUP,
                "min_cpus": GATE_MIN_CPUS,
                "enforced": warm_gate_on,
            },
        },
        "gate": {
            "speedup": GATE_SPEEDUP,
            "min_cpus": GATE_MIN_CPUS,
            "enforced": gate_on,
        },
    }
    (REPO_ROOT / "BENCH_sweep.json").write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n"
    )

    if gate_on and speedup < GATE_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x below gate {GATE_SPEEDUP}x",
              file=sys.stderr)
        return 1
    if warm_gate_on and warm_data["speedup"] < WARM_GATE_SPEEDUP:
        print(f"FAIL: warm-start speedup {warm_data['speedup']:.2f}x "
              f"below gate {WARM_GATE_SPEEDUP}x", file=sys.stderr)
        return 1
    return 0


def test_perf_sweep_smoke():
    """Pytest entry: tiny grid, equivalence + cache contract, no perf gate."""
    assert main(["--smoke"]) == 0


if __name__ == "__main__":
    sys.exit(main())
