"""Ablation — the bank-locality check (Section 3.1).

The paper argues bank locality separates "real" rowhammering from benign
thrashing: hammering needs at least two rows in one bank, while a single
hot row is row-buffer-served and harmless.  This ablation removes the
check and measures the false-positive cost across the SPEC suite, then
confirms detection of a real attack still works *with* the check enabled.

The 24 epoch cells (12 benchmarks x {with, without}) plus the live-attack
cell run through the sweep runner; each benchmark keeps one derived seed
across both configs so "removing the check multiplies false positives"
is a paired comparison.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import format_table
from repro.attacks import DoubleSidedClflushAttack
from repro.core import AnvilConfig, AnvilModule
from repro.presets import small_machine
from repro.runner import Job, derive_seed
from repro.sim.epoch import run_epoch_cell
from repro.units import MB
from repro.workloads import SPEC2006_INT

from _common import publish, sweep_runner

HORIZON_S = 60.0
ROOT_SEED = 23


def attack_detection_cell(seed: int) -> dict:
    """A real attack against ANVIL with the bank check enabled: must be
    detected and fully refreshed away."""
    machine = small_machine(threshold_min=30_000, seed=seed)
    anvil = AnvilModule(
        machine,
        AnvilConfig(
            llc_miss_threshold=3_300, tc_ms=1.0, ts_ms=1.0,
            sampling_rate_hz=50_000, assumed_flip_accesses=30_000,
        ),
    )
    anvil.install()
    attack = DoubleSidedClflushAttack(buffer_bytes=16 * MB, seed=seed)
    result = attack.run(machine, max_ms=10, stop_on_flip=False)
    return {
        "flips": result.flips,
        "detections": anvil.stats.detection_count,
    }


def ablation_jobs() -> list[Job]:
    base_config = AnvilConfig.baseline()
    no_check = replace(base_config, bank_locality_check=False)
    jobs = [
        Job.of(
            run_epoch_cell,
            key=f"bankcheck/{variant}/{name}",
            seed=derive_seed(ROOT_SEED, f"bankcheck/{name}"),
            benchmark=name,
            config=config,
            horizon_s=HORIZON_S,
        )
        for variant, config in (("with", base_config), ("without", no_check))
        for name in SPEC2006_INT
    ]
    jobs.append(Job.of(attack_detection_cell, key="bankcheck/attack"))
    return jobs


def run_ablation(jobs: int | None = None) -> dict:
    results = {
        r.key: r.value for r in sweep_runner(ROOT_SEED, jobs=jobs).run(ablation_jobs())
    }
    with_check = {
        name: results[f"bankcheck/with/{name}"].fp_refreshes_per_sec
        for name in SPEC2006_INT
    }
    without_check = {
        name: results[f"bankcheck/without/{name}"].fp_refreshes_per_sec
        for name in SPEC2006_INT
    }
    attack = results["bankcheck/attack"]
    return {
        "with": with_check,
        "without": without_check,
        "attack_flips": attack["flips"],
        "attack_detections": attack["detections"],
    }


def test_bank_locality_check_ablation(benchmark):
    data = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [name, f"{data['with'][name]:.2f}", f"{data['without'][name]:.2f}"]
        for name in data["with"]
    ]
    total_with = sum(data["with"].values())
    total_without = sum(data["without"].values())
    rows.append(["TOTAL", f"{total_with:.2f}", f"{total_without:.2f}"])
    text = format_table(
        ["Benchmark", "FP/s with bank check", "FP/s without"],
        rows,
        title="Ablation - bank-locality check vs false positives "
              f"(attack still detected: {data['attack_detections']} "
              f"detections, {data['attack_flips']} flips)",
    )
    publish("ablation_bank_check", text)
    assert data["attack_flips"] == 0 and data["attack_detections"] > 0
    assert total_without > 2 * total_with, (
        "removing the bank check should multiply false positives"
    )
