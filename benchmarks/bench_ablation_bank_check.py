"""Ablation — the bank-locality check (Section 3.1).

The paper argues bank locality separates "real" rowhammering from benign
thrashing: hammering needs at least two rows in one bank, while a single
hot row is row-buffer-served and harmless.  This ablation removes the
check and measures the false-positive cost across the SPEC suite, then
confirms detection of a real attack still works *with* the check enabled.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import format_table
from repro.attacks import DoubleSidedClflushAttack
from repro.core import AnvilConfig, AnvilModule
from repro.presets import small_machine
from repro.sim.epoch import EpochModel
from repro.units import MB
from repro.workloads import SPEC2006_INT

from _common import publish

HORIZON_S = 60.0


def run_ablation() -> dict:
    with_check = {}
    without_check = {}
    for name, profile in SPEC2006_INT.items():
        base_config = AnvilConfig.baseline()
        with_check[name] = EpochModel(profile, base_config, seed=23).run(
            HORIZON_S
        ).fp_refreshes_per_sec
        no_check = replace(base_config, bank_locality_check=False)
        without_check[name] = EpochModel(profile, no_check, seed=23).run(
            HORIZON_S
        ).fp_refreshes_per_sec

    # A real attack must still be detected with the check enabled.
    machine = small_machine(threshold_min=30_000)
    anvil = AnvilModule(
        machine,
        AnvilConfig(
            llc_miss_threshold=3_300, tc_ms=1.0, ts_ms=1.0,
            sampling_rate_hz=50_000, assumed_flip_accesses=30_000,
        ),
    )
    anvil.install()
    attack = DoubleSidedClflushAttack(buffer_bytes=16 * MB)
    result = attack.run(machine, max_ms=10, stop_on_flip=False)
    return {
        "with": with_check,
        "without": without_check,
        "attack_flips": result.flips,
        "attack_detections": anvil.stats.detection_count,
    }


def test_bank_locality_check_ablation(benchmark):
    data = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [name, f"{data['with'][name]:.2f}", f"{data['without'][name]:.2f}"]
        for name in data["with"]
    ]
    total_with = sum(data["with"].values())
    total_without = sum(data["without"].values())
    rows.append(["TOTAL", f"{total_with:.2f}", f"{total_without:.2f}"])
    text = format_table(
        ["Benchmark", "FP/s with bank check", "FP/s without"],
        rows,
        title="Ablation - bank-locality check vs false positives "
              f"(attack still detected: {data['attack_detections']} "
              f"detections, {data['attack_flips']} flips)",
    )
    publish("ablation_bank_check", text)
    assert data["attack_flips"] == 0 and data["attack_detections"] > 0
    assert total_without > 2 * total_with, (
        "removing the bank check should multiply false positives"
    )
