"""Hot-path engine microbenchmark: ``Machine.run`` vs ``Machine.run_fast``.

Measures simulated-ops/sec on three workload shapes and proves, on every
measured run, that the fast path is *bit-for-bit equivalent* to the
reference interpreter (identical :class:`RunResult`, final clock, PMU
counters, and cache/controller/device statistics on twin machines fed the
same op stream):

- **hammer**: the paper's rowhammer kernel — LOAD A / LOAD B / CLFLUSH A /
  CLFLUSH B with A and B in different banks, so every load is an LLC miss
  and a row-buffer hit.  This is the loop ANVIL must watch millions of
  times per experiment, and the fast path's headline target (>= 3x).
- **hammer_same_bank**: the true aggressor pattern (A, B in one bank), a
  row-conflict + disturbance-model stress; reported for transparency —
  the activation physics dominate, so the speedup is smaller.
- **stream**: a stride-64 streaming read over a working set larger than
  the LLC (mostly misses, no flushes).
- **mixed**: a seeded random load/store/flush/compute blend that lives
  mostly in the cache hierarchy.

Results are published under ``benchmarks/results/perf_hotpath.{txt,json}``
and the machine-readable summary is also written to ``BENCH_hotpath.json``
at the repository root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_perf_hotpath.py          # full
    PYTHONPATH=src python benchmarks/bench_perf_hotpath.py --smoke  # quick

The full run exits non-zero if the hammer-loop speedup drops below the
gate (3x); ``--smoke`` (and ``--no-gate``) skip the gate but still assert
equivalence.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.dram.mapping import DramCoord
from repro.presets import small_machine
from repro.sim.kernels import accel_signature, engine_mode
from repro.sim.ops import CLFLUSH, COMPUTE, LOAD, STORE

from _common import publish

#: Required run_fast/run speedups per gated workload.  hammer_same_bank
#: exercises the row-conflict + disturbance path, made allocation-free by
#: DramDevice.access_miss_fast.
GATES = {"hammer": 3.0, "hammer_same_bank": 2.5}
PAGE = 4096


# -- workload builders (must be deterministic per machine) --------------------


def hammer_ops(machine, n, same_bank=False):
    """The paper's hammer kernel: two aggressors, flush between rounds."""
    banks = (0, 0) if same_bank else (0, 1)
    vaddrs = (0x10000, 0x20000)
    for vaddr, bank, row in zip(vaddrs, banks, (1, 5)):
        coord = DramCoord(rank=0, bank=bank, row=row, col=0)
        paddr = machine.memory.controller.mapping.encode(coord)
        machine.memory.vm.map_fixed(vaddr, paddr & ~(PAGE - 1))
    va, vb = vaddrs
    ops = []
    for _ in range(n // 4):
        ops += [(LOAD, va), (LOAD, vb), (CLFLUSH, va), (CLFLUSH, vb)]
    return ops


def stream_ops(machine, n, pages=64):
    for p in range(pages):
        machine.memory.vm.map_fixed(p * PAGE, p * PAGE)
    span = pages * PAGE
    ops = []
    addr = 0
    for _ in range(n):
        ops.append((LOAD, addr))
        addr = (addr + 64) % span
    return ops


def mixed_ops(machine, n, pages=64, seed=0):
    rng = random.Random(seed)
    for p in range(pages):
        machine.memory.vm.map_fixed(p * PAGE, p * PAGE)
    ops = []
    for _ in range(n):
        r = rng.random()
        addr = rng.randrange(pages) * PAGE + rng.randrange(64) * 64
        if r < 0.55:
            ops.append((LOAD, addr))
        elif r < 0.75:
            ops.append((STORE, addr))
        elif r < 0.85:
            ops.append((CLFLUSH, addr))
        else:
            ops.append((COMPUTE, rng.randrange(1, 20)))
    return ops


WORKLOADS = {
    "hammer": lambda m, n: hammer_ops(m, n),
    "hammer_same_bank": lambda m, n: hammer_ops(m, n, same_bank=True),
    "stream": stream_ops,
    "mixed": mixed_ops,
}


# -- equivalence probe --------------------------------------------------------


def result_tuple(result):
    return (
        result.start_cycles, result.end_cycles, result.ops_executed,
        result.loads, result.stores, result.clflushes, result.dram_accesses,
        result.llc_misses, result.new_flips, result.overhead_cycles,
        result.stopped_by,
    )


def state_snapshot(machine):
    from repro.pmu import Event

    hierarchy = machine.memory.hierarchy
    controller = machine.memory.controller
    device = controller.device
    return {
        "cycles": machine.cycles,
        "counters": {e.name: machine.pmu.counter(e).read() for e in Event},
        "caches": [
            (c.stats.hits, c.stats.misses, c.stats.evictions,
             c.stats.invalidations, c.resident_lines())
            for c in (hierarchy.l1, hierarchy.l2, hierarchy.llc)
        ],
        "controller": (controller.stats.accesses,
                       controller.stats.total_latency_cycles,
                       controller.stats.blocked_cycles),
        "device": (device.stats.accesses, device.stats.row_hits,
                   device.stats.activations),
        "open_rows": list(device._open_rows),
        "flips": machine.memory.flip_count(),
    }


# -- measurement --------------------------------------------------------------


def run_once(builder, n, fast):
    machine = small_machine(threshold_min=30_000)
    ops = builder(machine, n)
    runner = machine.run_fast if fast else machine.run
    t0 = time.perf_counter()
    result = runner(ops)
    elapsed = time.perf_counter() - t0
    return elapsed, result_tuple(result), state_snapshot(machine)


def measure(name, builder, n, reps):
    slow_times, fast_times = [], []
    slow_probe = fast_probe = None
    for _ in range(reps):
        elapsed, result, state = run_once(builder, n, fast=False)
        slow_times.append(elapsed)
        slow_probe = (result, state)
        elapsed, result, state = run_once(builder, n, fast=True)
        fast_times.append(elapsed)
        fast_probe = (result, state)
    if slow_probe != fast_probe:
        raise AssertionError(
            f"{name}: run_fast diverged from run\n"
            f"  slow: {slow_probe}\n  fast: {fast_probe}"
        )
    slow_best, fast_best = min(slow_times), min(fast_times)
    return {
        "ops": n,
        "reps": reps,
        "slow_ops_per_sec": n / slow_best,
        "fast_ops_per_sec": n / fast_best,
        "speedup": slow_best / fast_best,
        "llc_misses": slow_probe[0][7],
        "equivalent": True,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny op counts, 1 rep, no speedup gate (CI)")
    parser.add_argument("--reps", type=int, default=5,
                        help="best-of-N repetitions (default 5)")
    parser.add_argument("--ops", type=int, default=60_000,
                        help="ops per workload per rep (default 60000)")
    parser.add_argument("--no-gate", action="store_true",
                        help="report but do not enforce the hammer gate")
    args = parser.parse_args(argv)
    if args.reps < 1:
        parser.error("--reps must be >= 1")
    if args.ops < 4:
        parser.error("--ops must be >= 4 (one hammer round)")

    n = 4_000 if args.smoke else args.ops
    reps = 1 if args.smoke else args.reps

    results = {}
    for name, builder in WORKLOADS.items():
        results[name] = measure(name, builder, n, reps)

    lines = [
        "Hot-path engine: simulated-ops/sec, Machine.run vs Machine.run_fast",
        f"(best of {reps}, {n} ops per workload; equivalence asserted on every run)",
        "",
        f"{'workload':18s} {'run':>12s} {'run_fast':>12s} {'speedup':>9s}",
    ]
    for name, r in results.items():
        lines.append(
            f"{name:18s} {r['slow_ops_per_sec'] / 1e3:9.1f}k/s "
            f"{r['fast_ops_per_sec'] / 1e3:10.1f}k/s "
            f"{r['speedup']:8.2f}x"
        )
    gate_on = not (args.smoke or args.no_gate)
    lines.append("")
    for workload, minimum in GATES.items():
        lines.append(
            f"{workload} gate (>= {minimum:.1f}x): "
            f"{results[workload]['speedup']:.2f}x "
            + ("ENFORCED" if gate_on else "not enforced (smoke/no-gate)")
        )
    text = "\n".join(lines)

    data = {
        "bench": "perf_hotpath",
        "mode": "smoke" if args.smoke else "full",
        "accel": accel_signature(),
        "engine": engine_mode(),
        "gate": {"workloads": dict(GATES), "enforced": gate_on},
        "workloads": results,
    }
    publish("perf_hotpath", text, data=data)
    (REPO_ROOT / "BENCH_hotpath.json").write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n"
    )

    failed = False
    if gate_on:
        for workload, minimum in GATES.items():
            speedup = results[workload]["speedup"]
            if speedup < minimum:
                print(
                    f"FAIL: {workload} speedup {speedup:.2f}x < {minimum}x",
                    file=sys.stderr,
                )
                failed = True
    return 1 if failed else 0


def test_perf_hotpath_smoke():
    """Pytest entry: smoke-size run, equivalence asserted, no perf gate."""
    assert main(["--smoke"]) == 0


if __name__ == "__main__":
    sys.exit(main())
