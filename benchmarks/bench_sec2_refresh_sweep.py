"""Section 2.1 — Rowhammering under increased refresh rates.

The deployed mitigation halves the refresh period to 32 ms; the paper
shows double-sided CLFLUSH hammering still flips bits ("it is still
possible to induce bit flips through double-sided hammering even when the
refresh period is as low as 16 ms", Section 5.2.1).  This bench sweeps
the retention period over {64, 32, 16} ms on the paper-scale module and
records whether (and when) the first flip lands.

At 16 ms the attack's ~15 ms accumulation barely fits a retention window,
so several refresh epochs may pass before one aligns — the bench allows a
long hammering budget and reports the first success.

The 3x2 (factor x seed) grid runs through the sweep runner.  Seeds stay
the literal {0, 1} the calibration used: the "must flip at 64/32 ms"
claims were validated against those exact draws.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.attacks import DoubleSidedClflushAttack
from repro.presets import paper_machine
from repro.runner import Job
from repro.units import MB

from _common import publish, sweep_runner

SWEEP = (
    (1.0, 64.0, 120.0),
    (2.0, 32.0, 250.0),
    (4.0, 16.0, 600.0),
)
SEEDS = (0, 1)
ROOT_SEED = 43


def hammer_cell(factor: float, budget_ms: float, seed: int) -> dict:
    machine = paper_machine(refresh_scale=factor, seed=seed)
    attack = DoubleSidedClflushAttack(buffer_bytes=256 * MB, seed=seed)
    result = attack.run(machine, max_ms=budget_ms)
    return {
        "flipped": result.flipped,
        "first_flip_ms": result.time_to_first_flip_ms,
    }


def sweep_jobs() -> list[Job]:
    return [
        Job.of(
            hammer_cell,
            key=f"sec2/x{factor}/s{seed}",
            seed=seed,
            factor=factor,
            budget_ms=budget_ms,
        )
        for factor, _, budget_ms in SWEEP
        for seed in SEEDS
    ]


def run_sweep(jobs: int | None = None) -> list[list[str]]:
    results = {
        r.key: r.value for r in sweep_runner(ROOT_SEED, jobs=jobs).run(sweep_jobs())
    }
    rows = []
    for factor, retention_ms, _ in SWEEP:
        flipped_at = None
        for seed in SEEDS:
            cell = results[f"sec2/x{factor}/s{seed}"]
            if cell["flipped"] and (
                flipped_at is None or cell["first_flip_ms"] < flipped_at
            ):
                flipped_at = cell["first_flip_ms"]
        rows.append([
            f"{retention_ms:.0f} ms",
            "YES" if flipped_at is not None else "no",
            f"{flipped_at:.1f} ms" if flipped_at is not None else "-",
        ])
    return rows


def test_refresh_rate_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    text = format_table(
        ["refresh period", "bit flips?", "first flip"],
        rows,
        title="Section 2.1 - double-sided CLFLUSH hammering vs refresh rate "
              "(paper: flips at 64, 32 and even 16 ms)",
    )
    text += (
        "\nNote: at 16 ms our calibrated module cannot flip — 220K accesses"
        "\ntake ~15 ms *plus* the quadrupled refresh-blocking stalls, which"
        "\npushes accumulation past the 16 ms retention window.  The paper's"
        "\nmodule (marginally faster per access) still flipped; either way"
        "\nthe deployed 32 ms mitigation fails, which is the claim under test."
    )
    publish("sec2_refresh_sweep", text)
    assert rows[0][1] == "YES", "baseline 64 ms must flip"
    assert rows[1][1] == "YES", "the deployed 32 ms mitigation must fail"
