"""Ablation — the PEBS sampling rate.

The paper fixes 5000 samples/s (~30 samples per 6 ms window).  Fewer
samples make stage 2 cheaper but starve the locality analysis (a row
needs ``min_row_samples`` hits to be flagged); more samples cost PMI time
linearly.  The sweep measures detection latency against a live attack and
benign overhead per rate.

Each rate is one sweep-runner cell; all four cells share a single derived
seed so the "overhead grows monotonically with rate" claim compares the
same miss-stream draws under different sampling duty.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import format_table
from repro.attacks import DoubleSidedClflushAttack
from repro.core import AnvilConfig, AnvilModule
from repro.presets import small_machine
from repro.runner import Job, derive_seed
from repro.sim.epoch import EpochModel
from repro.units import MB
from repro.workloads import spec_profile

from _common import publish, sweep_runner

#: Rates scaled to the small machine's 1 ms windows the same way the demo
#: config scales the paper's 5000/s at 6 ms (=30 samples/window).
RATES_PER_S = (10_000, 30_000, 50_000, 100_000)
ROOT_SEED = 31

BASE = AnvilConfig(
    llc_miss_threshold=3_300, tc_ms=1.0, ts_ms=1.0,
    sampling_rate_hz=50_000, assumed_flip_accesses=30_000,
)


def rate_cell(rate: int, seed: int) -> dict:
    config = replace(BASE, sampling_rate_hz=rate)
    machine = small_machine(threshold_min=30_000, seed=seed)
    anvil = AnvilModule(machine, config)
    anvil.install()
    attack = DoubleSidedClflushAttack(buffer_bytes=16 * MB, seed=seed)
    result = attack.run(machine, max_ms=15, stop_on_flip=False)
    # Benign overhead at the equivalent paper-scale rate: scale the
    # sample count per window through the epoch model.
    paper_rate = rate / 10  # 6 ms windows hold 6x the samples of 1 ms
    epoch_config = replace(
        AnvilConfig.baseline(), sampling_rate_hz=paper_rate
    )
    overhead = EpochModel(
        spec_profile("mcf"), epoch_config, seed=seed
    ).run(20.0).overhead_fraction
    return {
        "rate": rate,
        "samples_per_window": rate * config.ts_ms / 1e3,
        "detect_ms": anvil.first_detection_ms(),
        "flips": result.flips,
        "detections": anvil.stats.detection_count,
        "mcf_overhead": overhead,
    }


def rate_jobs() -> list[Job]:
    # One shared seed: the monotone-overhead claim is a paired comparison
    # of the same draws under different sampling duty.
    seed = derive_seed(ROOT_SEED, "sampling/cell")
    return [
        Job.of(rate_cell, key=f"sampling/{rate}", seed=seed, rate=rate)
        for rate in RATES_PER_S
    ]


def run_sweep(jobs: int | None = None) -> list[dict]:
    return sweep_runner(ROOT_SEED, jobs=jobs).values(rate_jobs())


def test_sampling_rate_sweep(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        [
            f"{r['rate']:,}",
            f"{r['samples_per_window']:.0f}",
            f"{r['detect_ms']:.2f}" if r["detect_ms"] is not None else "never",
            str(r["detections"]),
            str(r["flips"]),
            f"{r['mcf_overhead']:.2%}",
        ]
        for r in results
    ]
    text = format_table(
        ["samples/s", "per window", "first detection (ms)", "detections",
         "flips", "mcf overhead (paper-scale)"],
        rows,
        title="Ablation - PEBS sampling rate vs detection and overhead",
    )
    publish("ablation_sampling_rate", text)
    by_rate = {r["rate"]: r for r in results}
    # The paper's operating point (30 samples/window) and above protect.
    for rate in (30_000, 50_000):
        assert by_rate[rate]["flips"] == 0 and by_rate[rate]["detections"] > 0
    # Undersampling (10/window) detects but leaves gaps: protection is
    # intermittent, so flips can slip through between detections.
    assert by_rate[10_000]["detections"] > 0
    # Oversampling exhibits the observer effect: PMI handling consumes the
    # whole ts window, so few misses land in it, the estimated per-row
    # access rate collapses below the hammer cutoff, and detection fails
    # outright — a real pathology of sampling-based detectors.
    assert by_rate[100_000]["detections"] == 0
    # Benign overhead grows monotonically with rate.
    overheads = [r["mcf_overhead"] for r in results]
    assert overheads == sorted(overheads)
