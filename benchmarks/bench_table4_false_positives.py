"""Table 4 — Rate of False Positive Refreshes (SPEC2006 int, ANVIL-baseline).

Paper values (superfluous selective refreshes per second):

    astar 0.10   bzip2 1.05   gcc 0.71        gobmk 0.19
    h264ref 0.00 hmmer 0.00   libquantum 0.06 mcf 0.01
    omnetpp 0.02 perlbench 0.00  sjeng 0.00   xalancbmk 0.05

Long-horizon runs use the window-level epoch model, which shares the
stage-2 locality analyser with the kernel module (see DESIGN.md).  The
12-benchmark grid executes through the sweep runner (``--jobs N`` for a
process pool; results are cached and bit-identical at any worker count).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import AnvilConfig
from repro.runner import Job
from repro.sim.epoch import run_epoch_cell
from repro.workloads import SPEC2006_INT

from _common import anvil_table2_text, publish, sweep_runner

PAPER_FP = {
    "astar": 0.10, "bzip2": 1.05, "gcc": 0.71, "gobmk": 0.19,
    "h264ref": 0.00, "hmmer": 0.00, "libquantum": 0.06, "mcf": 0.01,
    "omnetpp": 0.02, "perlbench": 0.00, "sjeng": 0.00, "xalancbmk": 0.05,
}

HORIZON_S = 120.0
ROOT_SEED = 11


def table4_jobs() -> list[Job]:
    return [
        Job.of(
            run_epoch_cell,
            key=f"table4/{name}",
            benchmark=name,
            config=AnvilConfig.baseline(),
            horizon_s=HORIZON_S,
        )
        for name in SPEC2006_INT
    ]


def run_table4(jobs: int | None = None) -> list[list[str]]:
    results = sweep_runner(ROOT_SEED, jobs=jobs).values(table4_jobs())
    return [
        [
            result.benchmark,
            f"{result.fp_refreshes_per_sec:.2f}",
            f"{PAPER_FP[result.benchmark]:.2f}",
            f"{result.trigger_fraction:.0%}",
        ]
        for result in results
    ]


def test_table4_false_positive_refreshes(benchmark):
    rows = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    text = anvil_table2_text() + "\n" + format_table(
        ["Benchmark", "FP refreshes/sec (ours)", "(paper)", "stage-1 trigger"],
        rows,
        title="Table 4 - Rate of False Positive Refreshes",
    )
    publish("table4_false_positives", text)
    measured = {row[0]: float(row[1]) for row in rows}
    # Zero-FP benchmarks stay (near) zero...
    for name in ("h264ref", "hmmer", "sjeng"):
        assert measured[name] <= 0.05
    # ...bzip2 and gcc dominate, as in the paper...
    top_two = sorted(measured, key=measured.get)[-2:]
    assert set(top_two) == {"bzip2", "gcc"}
    # ...and every rate stays within the "innocuous" regime (a few/sec).
    assert all(rate < 5.0 for rate in measured.values())
