"""Section 2.2 — anatomy of the CLFLUSH-free attack.

Reproduces the section's quantitative claims on the paper-scale machine:

- the replacement-policy probe identifies Bit-PLRU;
- the efficient eviction pattern misses exactly the aggressor plus one
  conflict address per set per iteration;
- an iteration costs ~880 cycles / ~338 ns, allowing "up to 190K
  double-sided hammers within a 64 ms refresh period" — comfortably above
  the 110K-iteration (220K-access) flip requirement.
"""

from __future__ import annotations

from repro.attacks import (
    ClflushFreeAttack,
    build_eviction_set,
    identify_replacement_policy,
)
from repro.attacks.patterns import (
    AGGRESSOR,
    efficient_bit_plru_pattern,
    pattern_miss_profile,
)
from repro.attacks.targeting import RowResolver
from repro.presets import paper_machine
from repro.units import MB

from _common import publish


def run_anatomy() -> dict:
    machine = paper_machine(threshold_min=10**9, seed=0)  # measurement only
    memsys = machine.memory
    base = memsys.vm.mmap(256 * MB)
    resolver = RowResolver(memsys)
    resolver.scan_buffer(base, 256 * MB)
    triple = resolver.choose_triple()
    eviction_set = build_eviction_set(
        memsys, triple.aggressor_low_vaddr, base, 256 * MB
    )

    probe = identify_replacement_policy(
        machine, [triple.aggressor_low_vaddr] + eviction_set, rounds=30
    )

    ways = memsys.hierarchy.llc.config.ways
    pattern = efficient_bit_plru_pattern(ways)
    misses = pattern_miss_profile(pattern, probe.best, ways)

    # Measure the steady-state hammer rate on a fresh machine.
    machine2 = paper_machine(threshold_min=10**9, seed=0)
    attack = ClflushFreeAttack(buffer_bytes=256 * MB, seed=0)
    attack.prepare(machine2)
    # Warm up one iteration, then time 4 ms of hammering.
    for op in attack.iteration_ops():
        machine2.execute(op)
    result = attack.run(machine2, max_ms=4.0, stop_on_flip=False)
    ns_per_iteration = result.ns_per_iteration
    hammers_per_64ms = int(64e6 / ns_per_iteration)

    return {
        "probe_best": probe.best,
        "probe_score": probe.scores[probe.best],
        "pattern_len": len(pattern),
        "misses": misses,
        "ns_per_iteration": ns_per_iteration,
        "cycles_per_iteration": ns_per_iteration * 2.6,
        "hammers_per_64ms": hammers_per_64ms,
        "misses_per_iteration": result.total_dram_accesses / result.iterations,
    }


def test_clflush_free_anatomy(benchmark):
    data = benchmark.pedantic(run_anatomy, rounds=1, iterations=1)
    text = (
        "Section 2.2 - CLFLUSH-free attack anatomy (paper values in parens)\n"
        f"  identified LLC policy      : {data['probe_best']} "
        f"at {data['probe_score']:.0%} agreement (Bit-PLRU)\n"
        f"  eviction pattern length    : {data['pattern_len']} accesses/set\n"
        f"  steady-state misses/set    : {data['misses']} (aggressor + X11)\n"
        f"  DRAM accesses/iteration    : {data['misses_per_iteration']:.2f} (4)\n"
        f"  cycles per iteration       : {data['cycles_per_iteration']:.0f} (~880)\n"
        f"  ns per iteration           : {data['ns_per_iteration']:.0f} (~338)\n"
        f"  hammer pairs per 64 ms     : {data['hammers_per_64ms']:,} (up to 190K)\n"
        f"  needed for a flip          : 110,000 iterations (220K accesses)\n"
    )
    publish("sec2_clflush_free", text)
    assert data["probe_best"] == "bit-plru"
    assert AGGRESSOR in data["misses"] and len(data["misses"]) == 2
    assert 700 <= data["cycles_per_iteration"] <= 1100
    assert data["hammers_per_64ms"] > 110_000
