"""Ablation — the stage-1 LLC miss threshold.

The threshold trades benign-workload overhead against the slowest attack
the detector can see: an attacker who paces accesses below the threshold
never wakes stage 2, but also cannot land enough activations inside a
retention window to flip the paper's cells (Section 4.5's "ANVIL-light"
reasoning).  The sweep reports, per threshold: average/peak SPEC overhead,
total false positives, and the minimum per-64 ms access budget a stealthy
attacker is left with.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import format_table
from repro.analysis.metrics import normalized_times_summary
from repro.core import AnvilConfig
from repro.sim.epoch import EpochModel
from repro.workloads import SPEC2006_INT

from _common import publish

THRESHOLDS = (5_000, 10_000, 20_000, 40_000)
HORIZON_S = 30.0


def run_sweep() -> list[dict]:
    results = []
    for threshold in THRESHOLDS:
        config = replace(AnvilConfig.baseline(), llc_miss_threshold=threshold)
        times = {}
        fp_total = 0.0
        for name, profile in SPEC2006_INT.items():
            run = EpochModel(profile, config, seed=29).run(HORIZON_S)
            times[name] = run.normalized_time
            fp_total += run.fp_refreshes_per_sec
        summary = normalized_times_summary(times)
        # An attacker staying just under the threshold gets at most this
        # many misses per 64 ms refresh period.
        stealth_budget = threshold * 64.0 / config.tc_ms
        results.append({
            "threshold": threshold,
            "avg": summary["average_slowdown"],
            "peak": summary["peak_slowdown"],
            "fp": fp_total,
            "stealth_budget": stealth_budget,
        })
    return results


def test_stage1_threshold_sweep(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        [
            f"{r['threshold']:,}",
            f"{r['avg']:.2%}",
            f"{r['peak']:.2%}",
            f"{r['fp']:.2f}",
            f"{r['stealth_budget']:,.0f}",
        ]
        for r in results
    ]
    text = format_table(
        ["threshold / 6ms", "avg slowdown", "peak slowdown",
         "total FP/s", "stealth budget per 64 ms"],
        rows,
        title="Ablation - stage-1 threshold: overhead vs the access budget "
              "left to a sub-threshold attacker (flip needs 220K)",
    )
    publish("ablation_threshold_sweep", text)
    # Lower thresholds cost more (monotone overhead) but shrink what a
    # stealthy attacker can do.
    avgs = [r["avg"] for r in results]
    assert avgs == sorted(avgs, reverse=True)
    # The paper's 20K choice leaves a stealth budget just below the 220K
    # flip requirement: the derivation of Section 4.2.
    baseline = next(r for r in results if r["threshold"] == 20_000)
    assert baseline["stealth_budget"] < 220_000
