"""Ablation — the stage-1 LLC miss threshold.

The threshold trades benign-workload overhead against the slowest attack
the detector can see: an attacker who paces accesses below the threshold
never wakes stage 2, but also cannot land enough activations inside a
retention window to flip the paper's cells (Section 4.5's "ANVIL-light"
reasoning).  The sweep reports, per threshold: average/peak SPEC overhead,
total false positives, and the minimum per-64 ms access budget a stealthy
attacker is left with.

The (threshold x benchmark) grid — 48 epoch-model cells — runs through
the sweep runner; every threshold sees each benchmark under the same
derived seed, so the monotone-overhead claim stays a paired comparison.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import format_table
from repro.analysis.metrics import normalized_times_summary
from repro.core import AnvilConfig
from repro.runner import Job, derive_seed
from repro.sim.epoch import run_epoch_cell
from repro.workloads import SPEC2006_INT

from _common import publish, sweep_runner

THRESHOLDS = (5_000, 10_000, 20_000, 40_000)
HORIZON_S = 30.0
ROOT_SEED = 29


def threshold_jobs() -> list[Job]:
    return [
        Job.of(
            run_epoch_cell,
            key=f"thresh/{threshold}/{name}",
            seed=derive_seed(ROOT_SEED, f"thresh/{name}"),
            benchmark=name,
            config=replace(
                AnvilConfig.baseline(), llc_miss_threshold=threshold
            ),
            horizon_s=HORIZON_S,
        )
        for threshold in THRESHOLDS
        for name in SPEC2006_INT
    ]


def run_sweep(jobs: int | None = None) -> list[dict]:
    cell_results = sweep_runner(ROOT_SEED, jobs=jobs).values(threshold_jobs())
    per_threshold = len(SPEC2006_INT)
    results = []
    for t_index, threshold in enumerate(THRESHOLDS):
        runs = cell_results[t_index * per_threshold:(t_index + 1) * per_threshold]
        times = {run.benchmark: run.normalized_time for run in runs}
        fp_total = sum(run.fp_refreshes_per_sec for run in runs)
        summary = normalized_times_summary(times)
        # An attacker staying just under the threshold gets at most this
        # many misses per 64 ms refresh period.
        stealth_budget = threshold * 64.0 / AnvilConfig.baseline().tc_ms
        results.append({
            "threshold": threshold,
            "avg": summary["average_slowdown"],
            "peak": summary["peak_slowdown"],
            "fp": fp_total,
            "stealth_budget": stealth_budget,
        })
    return results


def test_stage1_threshold_sweep(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        [
            f"{r['threshold']:,}",
            f"{r['avg']:.2%}",
            f"{r['peak']:.2%}",
            f"{r['fp']:.2f}",
            f"{r['stealth_budget']:,.0f}",
        ]
        for r in results
    ]
    text = format_table(
        ["threshold / 6ms", "avg slowdown", "peak slowdown",
         "total FP/s", "stealth budget per 64 ms"],
        rows,
        title="Ablation - stage-1 threshold: overhead vs the access budget "
              "left to a sub-threshold attacker (flip needs 220K)",
    )
    publish("ablation_threshold_sweep", text)
    # Lower thresholds cost more (monotone overhead) but shrink what a
    # stealthy attacker can do.
    avgs = [r["avg"] for r in results]
    assert avgs == sorted(avgs, reverse=True)
    # The paper's 20K choice leaves a stealth budget just below the 220K
    # flip requirement: the derivation of Section 4.2.
    baseline = next(r for r in results if r["threshold"] == 20_000)
    assert baseline["stealth_budget"] < 220_000
