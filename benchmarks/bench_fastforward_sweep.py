"""Fast-forward engine benchmark: ``Machine.run_turbo`` vs ``Machine.run_fast``.

Long-horizon sweeps spend almost all their time re-interpreting steady-state
workload periods; the analytic fast-forward tier (:mod:`repro.sim.turbo`)
skips whole periods at a time.  This bench measures simulated-cycles/sec on
three regimes and proves, on every measured run, that the turbo engine is
*bit-for-bit equivalent* to the fast path (identical :class:`RunResult`,
final clock, PMU counters, cache/controller/device statistics, open rows,
and bit flips on twin machines running the same workload):

- **stream_resident**: a cache-resident stride-64 stream — the model
  converges quickly and nearly every lap is skipped.  This is the headline
  cell: the >= 10x gate applies here.
- **pointer_chase_anvil**: pointer chasing under a fully armed ANVIL —
  stage-1 timers carve decision-point islands into the skipping, the
  regime long detection sweeps live in.
- **hammer_flips**: the paper's CLFLUSH hammer loop with a low flip
  threshold — DRAM activations and bit flips happen *inside* skipped laps
  via disturbance replay, so equivalence includes flip sites and counts.
  Few-op laps bound the win (disturbance replay is irreducible per
  activation), so this cell is reported but not gated.

The gate mirrors the sweep bench's conditional pattern: it is enforced
only when the fast-forward engine actually engaged and skipped laps (and
never under ``--smoke`` / ``--no-gate``); a disengaged run reports the
reason instead of failing.

Results are published under ``benchmarks/results/perf_fastforward.{txt,json}``
and the machine-readable summary is also written to ``BENCH_fastforward.json``
at the repository root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fastforward_sweep.py          # full
    PYTHONPATH=src python benchmarks/bench_fastforward_sweep.py --smoke  # quick
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.core import AnvilConfig
from repro.core.anvil import AnvilModule
from repro.pmu import Event
from repro.presets import small_machine
from repro.sim.kernels import accel_signature

from _common import publish

KB = 1024

#: Required run_turbo/run_fast speedup on the headline (gated) cell,
#: enforced only when the engine engaged and skipped laps.
GATE_SPEEDUP = 10.0


def build_machine(anvil: bool, threshold_min: int | None):
    kwargs = {} if threshold_min is None else {"threshold_min": threshold_min}
    machine = small_machine(**kwargs)
    if anvil:
        AnvilModule(
            machine,
            AnvilConfig(
                llc_miss_threshold=3_300,
                tc_ms=1.0,
                ts_ms=1.0,
                sampling_rate_hz=50_000,
                assumed_flip_accesses=30_000,
            ),
        ).install()
    return machine


def make_stream():
    from repro.workloads import StreamWorkload

    return StreamWorkload(buffer_bytes=512 * KB, stride=64, seed=1)


def make_chase():
    from repro.workloads import PointerChaseWorkload

    return PointerChaseWorkload(working_set_bytes=128 * KB, seed=3)


def make_hammer():
    from repro.workloads import HammerWorkload

    return HammerWorkload(aggressors=2, think_cycles=120, seed=5)


#: name -> (workload factory, anvil, threshold_min, full/smoke horizons,
#:          gated, expect flips in full mode)
CELLS = {
    "stream_resident": (make_stream, False, None, 240_000_000, 20_000_000,
                        True, False),
    "pointer_chase_anvil": (make_chase, True, None, 60_000_000, 20_000_000,
                            False, False),
    "hammer_flips": (make_hammer, False, 20_000, 60_000_000, 10_000_000,
                     False, True),
}


# -- equivalence probe --------------------------------------------------------


def result_tuple(result):
    return (
        result.start_cycles, result.end_cycles, result.ops_executed,
        result.loads, result.stores, result.clflushes, result.dram_accesses,
        result.llc_misses, result.new_flips, result.overhead_cycles,
        result.stopped_by,
    )


def state_snapshot(machine):
    hierarchy = machine.memory.hierarchy
    controller = machine.memory.controller
    device = controller.device
    sampler = machine.pmu.sampler
    return {
        "cycles": machine.cycles,
        "overhead": machine.overhead_cycles,
        "counters": {e.name: machine.pmu.counter(e).read() for e in Event},
        "samples": None if sampler is None else sampler.total_samples,
        "caches": [
            (c.stats.hits, c.stats.misses, c.stats.evictions,
             c.stats.invalidations, c.resident_lines())
            for c in (hierarchy.l1, hierarchy.l2, hierarchy.llc)
        ],
        "controller": (controller.stats.accesses,
                       controller.stats.total_latency_cycles,
                       controller.stats.blocked_cycles),
        "device": (device.stats.accesses, device.stats.row_hits,
                   device.stats.activations,
                   dict(device.stats.activations_per_bank)),
        "open_rows": list(device._open_rows),
        "flips": machine.memory.flip_count(),
    }


# -- measurement --------------------------------------------------------------


def run_once(factory, anvil, threshold_min, max_cycles, turbo):
    machine = build_machine(anvil, threshold_min)
    workload = factory()
    workload.prepare(machine)
    t0 = time.perf_counter()
    if turbo:
        result = machine.run_turbo(workload, max_cycles=max_cycles)
    else:
        result = machine.run_fast(workload.ops(), max_cycles=max_cycles)
    elapsed = time.perf_counter() - t0
    stats = machine.turbo_stats if turbo else None
    return elapsed, (result_tuple(result), state_snapshot(machine)), stats


def measure(name, factory, anvil, threshold_min, max_cycles, reps):
    fast_times, turbo_times = [], []
    fast_probe = turbo_probe = turbo_stats = None
    for _ in range(reps):
        elapsed, probe, _ = run_once(
            factory, anvil, threshold_min, max_cycles, turbo=False)
        fast_times.append(elapsed)
        fast_probe = probe
        elapsed, probe, stats = run_once(
            factory, anvil, threshold_min, max_cycles, turbo=True)
        turbo_times.append(elapsed)
        turbo_probe = probe
        turbo_stats = stats
    if fast_probe != turbo_probe:
        raise AssertionError(
            f"{name}: run_turbo diverged from run_fast\n"
            f"  fast:  {fast_probe}\n  turbo: {turbo_probe}"
        )
    fast_best, turbo_best = min(fast_times), min(turbo_times)
    simulated = fast_probe[0][1]  # end_cycles (identical on both engines)
    return {
        "max_cycles": max_cycles,
        "reps": reps,
        "fast_cycles_per_sec": simulated / fast_best,
        "turbo_cycles_per_sec": simulated / turbo_best,
        "speedup": fast_best / turbo_best,
        "new_flips": fast_probe[0][8],
        "equivalent": True,
        "turbo": asdict(turbo_stats),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short horizons, 1 rep, no speedup gate (CI)")
    parser.add_argument("--reps", type=int, default=2,
                        help="best-of-N repetitions (default 2)")
    parser.add_argument("--no-gate", action="store_true",
                        help="report but do not enforce the speedup gate")
    args = parser.parse_args(argv)
    if args.reps < 1:
        parser.error("--reps must be >= 1")

    reps = 1 if args.smoke else args.reps
    results = {}
    for name, (factory, anvil, threshold_min, full, smoke,
               _gated, expect_flips) in CELLS.items():
        horizon = smoke if args.smoke else full
        results[name] = measure(
            name, factory, anvil, threshold_min, horizon, reps)
        if expect_flips and not args.smoke:
            assert results[name]["new_flips"] > 0, (
                f"{name}: expected bit flips inside skipped laps"
            )

    lines = [
        "Fast-forward engine: simulated-cycles/sec, run_fast vs run_turbo",
        f"(best of {reps}; bit-for-bit equivalence asserted on every run; "
        f"kernels: {accel_signature()})",
        "",
        f"{'cell':22s} {'run_fast':>12s} {'run_turbo':>12s} {'speedup':>9s} "
        f"{'skipped':>8s} {'exact':>6s}",
    ]
    for name, r in results.items():
        turbo = r["turbo"]
        lines.append(
            f"{name:22s} {r['fast_cycles_per_sec'] / 1e6:9.1f}M/s "
            f"{r['turbo_cycles_per_sec'] / 1e6:9.1f}M/s "
            f"{r['speedup']:8.2f}x {turbo['laps_skipped']:8d} "
            f"{turbo['laps_exact']:6d}"
        )

    headline = results["stream_resident"]
    engaged = (headline["turbo"]["engaged"]
               and headline["turbo"]["laps_skipped"] > 0)
    gate_on = engaged and not (args.smoke or args.no_gate)
    lines.append("")
    if engaged:
        status = "ENFORCED" if gate_on else "not enforced (smoke/no-gate)"
    else:
        status = ("not enforced (fast-forward disengaged: "
                  f"{headline['turbo']['disengage_reason'] or 'no laps skipped'})")
    lines.append(
        f"stream_resident gate (>= {GATE_SPEEDUP:.0f}x): "
        f"{headline['speedup']:.2f}x {status}"
    )
    text = "\n".join(lines)

    data = {
        "bench": "perf_fastforward",
        "mode": "smoke" if args.smoke else "full",
        "accel": accel_signature(),
        "gate": {
            "cell": "stream_resident",
            "speedup": GATE_SPEEDUP,
            "enforced": gate_on,
        },
        "cells": results,
    }
    publish("perf_fastforward", text, data=data)
    (REPO_ROOT / "BENCH_fastforward.json").write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n"
    )

    if gate_on and headline["speedup"] < GATE_SPEEDUP:
        print(
            f"FAIL: stream_resident speedup {headline['speedup']:.2f}x "
            f"< {GATE_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    return 0


def test_perf_fastforward_smoke():
    """Pytest entry: smoke-size run, equivalence asserted, no perf gate."""
    assert main(["--smoke"]) == 0


if __name__ == "__main__":
    sys.exit(main())
