"""Table 3 — Rowhammer Detection Results.

Paper (ANVIL-baseline, Table 2 parameters):

    Benchmark                  Avg time to detect   Refreshes/64 ms   Flips
    CLFLUSH      (heavy load)  12.8 ms              12.35             0
    CLFLUSH      (light load)  12.3 ms              10.3              0
    CLFLUSH-free (heavy load)  35.3 ms              4.53              0
    CLFLUSH-free (light load)  22.85 ms             5.10              0

Heavy load runs the attack alongside the mcf+libquantum+omnetpp trio
(Section 4.2), whose misses share the counters and dilute the attack's
PEBS sample share.  "Average time to detect" is, per 64 ms refresh cycle
in which hammering occurred, the latency from cycle start to the first
completed detection (including the selective refreshes).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.attacks import ClflushFreeAttack, DoubleSidedClflushAttack
from repro.core import AnvilConfig, AnvilModule
from repro.presets import paper_machine
from repro.units import MB
from repro.workloads import BackgroundMix

from _common import anvil_table2_text, publish

PAPER = {
    ("CLFLUSH", "heavy"): (12.8, 12.35),
    ("CLFLUSH", "light"): (12.3, 10.3),
    ("CLFLUSH-free", "heavy"): (35.3, 4.53),
    ("CLFLUSH-free", "light"): (22.85, 5.10),
}

CASES = (
    ("CLFLUSH", DoubleSidedClflushAttack, "heavy", 128.0),
    ("CLFLUSH", DoubleSidedClflushAttack, "light", 128.0),
    ("CLFLUSH-free", ClflushFreeAttack, "heavy", 96.0),
    ("CLFLUSH-free", ClflushFreeAttack, "light", 96.0),
)

REFRESH_CYCLE_MS = 64.0


def average_detection_latency_ms(machine, anvil, start_cycles: int) -> float:
    """Mean (first detection in cycle - cycle start) over refresh cycles."""
    cycle = machine.clock.cycles_from_ms(REFRESH_CYCLE_MS)
    first_by_cycle: dict[int, int] = {}
    for detection in anvil.stats.detections:
        offset = detection.time_cycles - start_cycles
        index = offset // cycle
        first_by_cycle.setdefault(index, offset - index * cycle)
    if not first_by_cycle:
        return float("nan")
    mean_cycles = sum(first_by_cycle.values()) / len(first_by_cycle)
    return machine.clock.ms_from_cycles(int(mean_cycles))


def run_case(label: str, attack_cls, load: str, duration_ms: float):
    machine = paper_machine(seed=1)
    if load == "heavy":
        BackgroundMix(seed=7).attach(machine)  # default co-runner scale
    anvil = AnvilModule(machine, AnvilConfig.baseline())
    anvil.install()
    attack = attack_cls(buffer_bytes=256 * MB, seed=1)
    start = machine.cycles
    result = attack.run(machine, max_ms=duration_ms, stop_on_flip=False)
    elapsed = machine.cycles - start
    refreshes_per_cycle = anvil.stats.refreshes_per_interval(
        machine.clock.cycles_from_ms(REFRESH_CYCLE_MS), elapsed
    )
    return {
        "detect_ms": average_detection_latency_ms(machine, anvil, start),
        "refreshes_per_64ms": refreshes_per_cycle,
        "flips": result.flips,
        "detections": anvil.stats.detection_count,
    }


def run_table3() -> list[list[str]]:
    rows = []
    for label, attack_cls, load, duration_ms in CASES:
        data = run_case(label, attack_cls, load, duration_ms)
        paper_detect, paper_refresh = PAPER[(label, load)]
        rows.append([
            f"{label} ({load} load)",
            f"{data['detect_ms']:.1f}",
            f"{paper_detect}",
            f"{data['refreshes_per_64ms']:.2f}",
            f"{paper_refresh}",
            str(data["flips"]),
        ])
    return rows


def test_table3_detection(benchmark):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    text = anvil_table2_text() + "\n" + format_table(
        ["Benchmark", "avg ms to detect (ours)", "(paper)",
         "refreshes/64ms (ours)", "(paper)", "flips"],
        rows,
        title="Table 3 - Rowhammer Detection Results (paper flips: 0 for all)",
    )
    publish(
        "table3_detection",
        text,
        data={
            "columns": ["benchmark", "detect_ms", "paper_detect_ms",
                        "refreshes_per_64ms", "paper_refreshes", "flips"],
            "rows": rows,
        },
    )
    for row in rows:
        assert row[5] == "0", f"flips slipped through: {row}"
        assert float(row[1]) < REFRESH_CYCLE_MS, "detection within a refresh cycle"
        # Selective refreshes stay orders of magnitude below hammer rates
        # (Section 3.3's anti-abuse property): tens per 64 ms vs the
        # >200K accesses per 64 ms an attack needs.
        assert float(row[3]) < 64.0
    # Note (EXPERIMENTS.md): our detector also flags the CLFLUSH-free
    # attack's eviction-conflict rows — they genuinely hammer their own
    # neighbours at full rate — so unlike the paper's Table 3 the
    # CLFLUSH-free rows can protect *more* victims per cycle; under heavy
    # load sample dilution pushes per-window flagging back down.  The
    # invariant that matters is zero flips with sane refresh budgets,
    # asserted above for every row.
