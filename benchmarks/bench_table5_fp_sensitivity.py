"""Table 5 — False Positive Refreshes under ANVIL-light and ANVIL-heavy.

Paper (Section 4.5):

    Benchmark    light (refr/s)   heavy (refr/s)
    bzip2        1.61             1.09
    gcc          7.12             1.88
    gobmk        0.28             0.84
    libquantum   0.13             0.08
    perlbench    0.06             0.00

Directional claims under test: ANVIL-light (halved stage-1 threshold,
halved hot-row cutoff) raises false positives relative to baseline;
ANVIL-heavy (2 ms windows, ~10 samples) lowers them for most benchmarks
because short windows rarely accumulate high-locality samples.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import AnvilConfig
from repro.sim.epoch import EpochModel
from repro.workloads import spec_profile

from _common import publish

PAPER = {
    "bzip2": (1.61, 1.09),
    "gcc": (7.12, 1.88),
    "gobmk": (0.28, 0.84),
    "libquantum": (0.13, 0.08),
    "perlbench": (0.06, 0.00),
}

HORIZON_S = 120.0


def run_table5() -> dict[str, dict[str, float]]:
    results: dict[str, dict[str, float]] = {}
    for name in PAPER:
        profile = spec_profile(name)
        results[name] = {
            "baseline": EpochModel(
                profile, AnvilConfig.baseline(), seed=13
            ).run(HORIZON_S).fp_refreshes_per_sec,
            "light": EpochModel(
                profile, AnvilConfig.light(), config_name="ANVIL-light", seed=13
            ).run(HORIZON_S).fp_refreshes_per_sec,
            "heavy": EpochModel(
                profile, AnvilConfig.heavy(), config_name="ANVIL-heavy", seed=13
            ).run(HORIZON_S).fp_refreshes_per_sec,
        }
    return results


def test_table5_fp_sensitivity(benchmark):
    results = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{values['light']:.2f}", f"{PAPER[name][0]:.2f}",
            f"{values['heavy']:.2f}", f"{PAPER[name][1]:.2f}",
            f"{values['baseline']:.2f}",
        ]
        for name, values in results.items()
    ]
    text = format_table(
        ["Benchmark", "light (ours)", "(paper)", "heavy (ours)", "(paper)",
         "baseline (ours)"],
        rows,
        title="Table 5 - FP refreshes/sec under ANVIL-light / ANVIL-heavy",
    )
    publish("table5_fp_sensitivity", text)
    lighter = sum(
        values["light"] >= values["baseline"] for values in results.values()
    )
    assert lighter >= 4, "ANVIL-light should raise FP rates"
    heavier = sum(
        values["heavy"] <= values["light"] for values in results.values()
    )
    assert heavier >= 4, "ANVIL-heavy's short windows should cut FP rates"
