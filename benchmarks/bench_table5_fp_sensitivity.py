"""Table 5 — False Positive Refreshes under ANVIL-light and ANVIL-heavy.

Paper (Section 4.5):

    Benchmark    light (refr/s)   heavy (refr/s)
    bzip2        1.61             1.09
    gcc          7.12             1.88
    gobmk        0.28             0.84
    libquantum   0.13             0.08
    perlbench    0.06             0.00

Directional claims under test: ANVIL-light (halved stage-1 threshold,
halved hot-row cutoff) raises false positives relative to baseline;
ANVIL-heavy (2 ms windows, ~10 samples) lowers them for most benchmarks
because short windows rarely accumulate high-locality samples.

The 5x3 (benchmark x config) grid runs through the sweep runner; each
benchmark's three configs share one derived seed so the light-vs-baseline
and heavy-vs-light claims stay paired comparisons.
"""

from __future__ import annotations

from repro.core import AnvilConfig
from repro.analysis import format_table
from repro.runner import Job, derive_seed
from repro.sim.epoch import run_epoch_cell

from _common import publish, sweep_runner

PAPER = {
    "bzip2": (1.61, 1.09),
    "gcc": (7.12, 1.88),
    "gobmk": (0.28, 0.84),
    "libquantum": (0.13, 0.08),
    "perlbench": (0.06, 0.00),
}

HORIZON_S = 120.0
ROOT_SEED = 13

CONFIGS = (
    ("baseline", AnvilConfig.baseline, "ANVIL-baseline"),
    ("light", AnvilConfig.light, "ANVIL-light"),
    ("heavy", AnvilConfig.heavy, "ANVIL-heavy"),
)


def table5_jobs() -> list[Job]:
    return [
        Job.of(
            run_epoch_cell,
            key=f"table5/{label}/{name}",
            seed=derive_seed(ROOT_SEED, f"table5/{name}"),
            benchmark=name,
            config=factory(),
            config_name=config_name,
            horizon_s=HORIZON_S,
        )
        for name in PAPER
        for label, factory, config_name in CONFIGS
    ]


def run_table5(jobs: int | None = None) -> dict[str, dict[str, float]]:
    runner_results = sweep_runner(ROOT_SEED, jobs=jobs).run(table5_jobs())
    results: dict[str, dict[str, float]] = {}
    for job_result in runner_results:
        _, label, name = job_result.key.split("/")
        results.setdefault(name, {})[label] = (
            job_result.value.fp_refreshes_per_sec
        )
    return results


def test_table5_fp_sensitivity(benchmark):
    results = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{values['light']:.2f}", f"{PAPER[name][0]:.2f}",
            f"{values['heavy']:.2f}", f"{PAPER[name][1]:.2f}",
            f"{values['baseline']:.2f}",
        ]
        for name, values in results.items()
    ]
    text = format_table(
        ["Benchmark", "light (ours)", "(paper)", "heavy (ours)", "(paper)",
         "baseline (ours)"],
        rows,
        title="Table 5 - FP refreshes/sec under ANVIL-light / ANVIL-heavy",
    )
    publish("table5_fp_sensitivity", text)
    lighter = sum(
        values["light"] >= values["baseline"] for values in results.values()
    )
    assert lighter >= 4, "ANVIL-light should raise FP rates"
    heavier = sum(
        values["heavy"] <= values["light"] for values in results.values()
    )
    assert heavier >= 4, "ANVIL-heavy's short windows should cut FP rates"
