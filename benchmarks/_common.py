"""Shared helpers for the benchmark harness.

Every bench prints its reproduced table/figure next to the paper's
reported values and also writes it to ``benchmarks/results/<name>.txt`` so
the EXPERIMENTS.md record can be assembled from a plain
``pytest benchmarks/ --benchmark-only`` run (add ``-s`` to see the tables
live).  Benches that have machine-readable numbers additionally pass
``data=`` to :func:`publish`, which lands next to the text as
``benchmarks/results/<name>.json`` for tooling (CI trend lines, the
hot-path speedup gate).
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def publish(name: str, text: str, data: dict | None = None) -> None:
    """Print a result block and persist it under benchmarks/results/.

    ``data``, when given, is written as ``<name>.json`` beside the text
    so downstream tooling never has to parse the human tables.
    """
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )


def anvil_table2_text() -> str:
    """Table 2 (detector parameters) — printed alongside every ANVIL bench."""
    from repro.core import AnvilConfig

    config = AnvilConfig.baseline()
    return (
        "Table 2 - Rowhammer Detector Parameters (baseline)\n"
        f"  LLC_MISS_THRESHOLD : {config.llc_miss_threshold}\n"
        f"  Miss Count Duration (tc) : {config.tc_ms} ms\n"
        f"  Sampling Duration  (ts) : {config.ts_ms} ms\n"
        f"  Sampling rate           : {config.sampling_rate_hz:.0f} samples/s\n"
    )
