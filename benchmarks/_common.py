"""Shared helpers for the benchmark harness.

Every bench prints its reproduced table/figure next to the paper's
reported values and also writes it to ``benchmarks/results/<name>.txt`` so
the EXPERIMENTS.md record can be assembled from a plain
``pytest benchmarks/ --benchmark-only`` run (add ``-s`` to see the tables
live).  Benches that have machine-readable numbers additionally pass
``data=`` to :func:`publish`, which lands next to the text as
``benchmarks/results/<name>.json`` for tooling (CI trend lines, the
hot-path speedup gate).

Sweep-shaped benches execute their (config x workload x seed) grids
through :func:`sweep_runner`, which honours the ``--jobs`` pytest option
/ ``REPRO_JOBS`` environment knob for parallelism and keeps an
incremental result cache under ``benchmarks/results/.cache/``.  The
executor backend is equally env-driven: ``--backend``/``REPRO_BACKEND``
picks serial, process, or tcp, and ``--workers``/``REPRO_WORKERS``
supplies the TCP fleet's addresses — results are bit-identical on every
backend, so benches never need to care which one ran them.
Failure semantics are configurable the same way: ``--fail-policy`` /
``REPRO_FAIL_POLICY`` picks strict (raise an aggregated ``SweepError``)
or degrade (partial results + failure manifest), and ``--cell-timeout``
/ ``REPRO_CELL_TIMEOUT`` bounds each cell attempt's wall clock.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.runner import FaultPlan, ResultCache, RetryPolicy, SweepRunner

RESULTS_DIR = Path(__file__).parent / "results"
CACHE_DIR = RESULTS_DIR / ".cache"

#: Environment knob disabling the on-disk sweep cache (any falsy value).
CACHE_ENV = "REPRO_SWEEP_CACHE"

#: Environment knobs mirroring the ``--fail-policy``/``--cell-timeout``
#: pytest options (see ``benchmarks/conftest.py``).
FAIL_POLICY_ENV = "REPRO_FAIL_POLICY"
CELL_TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"


def _write_atomic(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via tmp file + ``os.replace`` so parallel
    bench runs can never interleave or leave a torn result file."""
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def publish(name: str, text: str, data: dict | None = None) -> None:
    """Print a result block and persist it under benchmarks/results/.

    ``data``, when given, is written as ``<name>.json`` beside the text
    so downstream tooling never has to parse the human tables.  Both
    files are written atomically.
    """
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    _write_atomic(RESULTS_DIR / f"{name}.txt", text + "\n")
    if data is not None:
        _write_atomic(
            RESULTS_DIR / f"{name}.json",
            json.dumps(data, indent=2, sort_keys=True) + "\n",
        )


def sweep_cache() -> ResultCache | None:
    """The shared bench result cache (``REPRO_SWEEP_CACHE=0`` disables)."""
    if os.environ.get(CACHE_ENV, "1").lower() in ("0", "false", "no", "off"):
        return None
    return ResultCache(CACHE_DIR)


def fail_policy() -> str:
    """Sweep failure policy from ``REPRO_FAIL_POLICY`` (default strict)."""
    return os.environ.get(FAIL_POLICY_ENV, "strict").lower() or "strict"


def cell_timeout() -> float | None:
    """Per-attempt cell timeout in seconds from ``REPRO_CELL_TIMEOUT``
    (unset, empty, or non-positive disables the deadline)."""
    raw = os.environ.get(CELL_TIMEOUT_ENV, "")
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def sweep_runner(
    root_seed: int,
    jobs: int | None = None,
    cache: bool = True,
    policy: str | None = None,
    retry: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    checkpoint: str | os.PathLike | None = None,
) -> SweepRunner:
    """A :class:`SweepRunner` wired to the bench harness conventions:
    worker count from ``--jobs``/``REPRO_JOBS`` unless overridden, result
    cache under ``benchmarks/results/.cache/``, failure policy and cell
    timeout from ``--fail-policy``/``--cell-timeout`` (or their
    environment twins) unless given explicitly."""
    if retry is None:
        retry = RetryPolicy(timeout_s=cell_timeout())
    return SweepRunner(
        jobs=jobs,
        root_seed=root_seed,
        cache=sweep_cache() if cache else None,
        policy=policy if policy is not None else fail_policy(),
        retry=retry,
        fault_plan=fault_plan,
        checkpoint=checkpoint,
    )


def anvil_table2_text() -> str:
    """Table 2 (detector parameters) — printed alongside every ANVIL bench."""
    from repro.core import AnvilConfig

    config = AnvilConfig.baseline()
    return (
        "Table 2 - Rowhammer Detector Parameters (baseline)\n"
        f"  LLC_MISS_THRESHOLD : {config.llc_miss_threshold}\n"
        f"  Miss Count Duration (tc) : {config.tc_ms} ms\n"
        f"  Sampling Duration  (ts) : {config.ts_ms} ms\n"
        f"  Sampling rate           : {config.sampling_rate_hz:.0f} samples/s\n"
    )
