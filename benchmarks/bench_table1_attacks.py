"""Table 1 — Rowhammer Attack Characteristics.

Paper (Sandy Bridge laptop, 4 GB DDR3):

    Technique                      Min row accesses   Time to first flip
    Single-sided with CLFLUSH      400K               58 ms
    Double-sided with CLFLUSH      220K               15 ms
    Double-sided without CLFLUSH   220K               45 ms

The paper reports *minimum* values over its measurement campaign, so each
attack runs over a few seeds (different page placements, hence different
victim refresh phases) and the minimum is reported.  Absolute times track
the calibrated cycle model; the two properties that must hold are the
access-count ratios (double-sided ~220K; single-sided ~2x that) and the
speed ordering (double CLFLUSH < CLFLUSH-free < single CLFLUSH).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.attacks import (
    ClflushFreeAttack,
    DoubleSidedClflushAttack,
    SingleSidedClflushAttack,
)
from repro.presets import paper_machine
from repro.units import MB

from _common import publish

PAPER = {
    "Single-Sided with CLFLUSH": (400_000, 58.0),
    "Double-Sided with CLFLUSH": (220_000, 15.0),
    "Double-Sided without CLFLUSH": (220_000, 45.0),
}

CASES = (
    ("Single-Sided with CLFLUSH", SingleSidedClflushAttack, (0, 1), 200.0),
    ("Double-Sided with CLFLUSH", DoubleSidedClflushAttack, (0, 1, 2), 120.0),
    ("Double-Sided without CLFLUSH", ClflushFreeAttack, (0, 1), 160.0),
)


def run_table1() -> list[list[str]]:
    rows = []
    for label, attack_cls, seeds, max_ms in CASES:
        best_accesses = None
        best_time = None
        for seed in seeds:
            machine = paper_machine(seed=seed)
            attack = attack_cls(buffer_bytes=256 * MB, seed=seed)
            result = attack.run(machine, max_ms=max_ms)
            assert result.flipped, f"{label} seed {seed} did not flip"
            if best_accesses is None or result.min_row_accesses < best_accesses:
                best_accesses = result.min_row_accesses
            if best_time is None or result.time_to_first_flip_ms < best_time:
                best_time = result.time_to_first_flip_ms
        paper_accesses, paper_time = PAPER[label]
        rows.append([
            label,
            f"{best_accesses:,}",
            f"{paper_accesses:,}",
            f"{best_time:.1f}",
            f"{paper_time:.1f}",
        ])
    return rows


def test_table1_attack_characteristics(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    text = format_table(
        ["Hammer Technique", "min accesses (ours)", "(paper)",
         "ms to first flip (ours)", "(paper)"],
        rows,
        title="Table 1 - Rowhammer Attack Characteristics",
    )
    publish("table1_attacks", text)
    # Shape assertions: ratios and ordering.
    single, double, free = rows
    assert int(double[1].replace(",", "")) <= 0.6 * int(single[1].replace(",", ""))
    assert float(double[3]) < float(free[3]) < float(single[3])
