#!/usr/bin/env python3
"""Quickstart: hammer a simulated DRAM module, then let ANVIL stop it.

Runs on a scaled-down machine (64 MB module, weak cells at 30K
disturbance units) so the whole demo takes well under a minute; the
mechanisms — Bit-PLRU LLC, row buffers, PEBS sampling, the two-stage
detector — are identical to the paper-scale configuration used by the
benchmark harness.

Usage:  python examples/quickstart.py
"""

from repro import AnvilConfig, AnvilModule, DoubleSidedClflushAttack, small_machine
from repro.units import MB

#: ANVIL scaled to the demo machine, the same way Table 2's parameters
#: are matched to the paper's Table 1 measurement.
DEMO_ANVIL = AnvilConfig(
    llc_miss_threshold=3_300,
    tc_ms=1.0,
    ts_ms=1.0,
    sampling_rate_hz=50_000,
    assumed_flip_accesses=30_000,
)


def attack_unprotected() -> None:
    machine = small_machine(threshold_min=30_000)
    attack = DoubleSidedClflushAttack(buffer_bytes=16 * MB)
    result = attack.run(machine, max_ms=30)
    print("== Unprotected machine ==")
    print(f"  aggressor rows   : {[c.row for c in attack.aggressor_coords]}")
    print(f"  victim row       : {attack.victim_coords[0].row}")
    print(f"  bit flips        : {result.flips}")
    print(f"  time to 1st flip : {result.time_to_first_flip_ms:.2f} ms")
    print(f"  row accesses     : {result.min_row_accesses}")

    # Show the corruption at the data level: the victim word no longer
    # reads back what the memory holds by default.
    device = machine.memory.device
    flip = device.flips_in_row(attack.victim_coords[0])
    if flip:
        bit = flip[0].bit_offset
        paddr = machine.memory.mapping.encode(attack.victim_coords[0])
        word = device.read_word(paddr + (bit // 64) * 8)
        print(f"  victim word      : {word:#018x} (bit {bit % 64} flipped)")


def attack_protected() -> None:
    machine = small_machine(threshold_min=30_000)
    anvil = AnvilModule(machine, DEMO_ANVIL)
    anvil.install()
    attack = DoubleSidedClflushAttack(buffer_bytes=16 * MB)
    result = attack.run(machine, max_ms=30, stop_on_flip=False)
    report = anvil.report()
    print("\n== Same attack under ANVIL ==")
    print(f"  bit flips          : {result.flips}")
    print(f"  first detection    : {report.first_detection_ms:.2f} ms")
    print(f"  detections         : {report.detections}")
    print(f"  selective refreshes: {report.selective_refreshes}")
    detected = sorted({a.row_key[2] for d in anvil.stats.detections for a in d.aggressors})
    print(f"  flagged aggressors : {detected}")
    print(f"  detector overhead  : {report.overhead_cycles} cycles "
          f"({report.overhead_cycles / machine.cycles:.2%} of run — under "
          f"active attack; benign-workload overhead is ~1%, see Figure 3)")


def main() -> None:
    attack_unprotected()
    attack_protected()


if __name__ == "__main__":
    main()
