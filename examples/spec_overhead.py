#!/usr/bin/env python3
"""SPEC2006 overhead study at example scale: normalized execution time
under ANVIL vs the doubled-refresh mitigation, plus false-positive rates
(miniature versions of Figure 3 and Table 4; the benchmark harness runs
the full-length versions).

Usage:  python examples/spec_overhead.py
"""

from repro.analysis import format_figure_series, format_table, percent
from repro.analysis.metrics import normalized_times_summary
from repro.core import AnvilConfig
from repro.sim.epoch import EpochModel, double_refresh_normalized_time
from repro.workloads import SPEC2006_INT

HORIZON_S = 20.0


def main() -> None:
    anvil_times: dict[str, float] = {}
    double_times: dict[str, float] = {}
    fp_rows = []
    for name, profile in SPEC2006_INT.items():
        result = EpochModel(profile, AnvilConfig.baseline()).run(HORIZON_S)
        anvil_times[name] = result.normalized_time
        double_times[name] = double_refresh_normalized_time(profile)
        fp_rows.append([
            name,
            f"{result.trigger_fraction:.0%}",
            f"{result.fp_refreshes_per_sec:.2f}",
        ])

    print(format_figure_series(
        "Normalized execution time (1.0 = unprotected, 64 ms refresh)",
        {"ANVIL": anvil_times, "Double Refresh": double_times},
        bar_scale=(0.99, 1.06),
    ))

    summary = normalized_times_summary(anvil_times)
    print(f"\nANVIL average slowdown: {percent(summary['average_slowdown'])} "
          f"(paper: ~1.17%); peak: {percent(summary['peak_slowdown'])} "
          f"(paper: 3.18%)")

    print("\n" + format_table(
        ["benchmark", "stage-1 trigger", "FP refreshes/sec"],
        fp_rows,
        title=f"False positives over {HORIZON_S:.0f} s (Table 4 analogue)",
    ))


if __name__ == "__main__":
    main()
