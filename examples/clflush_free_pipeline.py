#!/usr/bin/env python3
"""The full Section 2.2 pipeline, step by step:

1. allocate a buffer and resolve its DRAM rows via /proc/pagemap;
2. pick a double-sided hammer target (weak victim row, both aggressors
   owned);
3. build LLC eviction sets (same set index + slice hash) for both
   aggressors;
4. reverse-engineer the LLC replacement policy by correlating the miss
   counter against policy simulators (the paper finds Bit-PLRU);
5. plan and verify the efficient eviction pattern;
6. run the CLFLUSH-free attack to the first bit flip.

Usage:  python examples/clflush_free_pipeline.py
"""

from repro import ClflushFreeAttack, small_machine
from repro.attacks import (
    RowResolver,
    build_eviction_set,
    identify_replacement_policy,
)
from repro.attacks.patterns import (
    efficient_bit_plru_pattern,
    pattern_cost_cycles,
    pattern_miss_profile,
)
from repro.units import MB

BUFFER = 16 * MB


def main() -> None:
    machine = small_machine(threshold_min=30_000)
    memsys = machine.memory

    # Step 1-2: row resolution and target choice.
    base = memsys.vm.mmap(BUFFER)
    resolver = RowResolver(memsys)
    rows = resolver.scan_buffer(base, BUFFER)
    triple = resolver.choose_triple(resolver.templating_oracle())
    print(f"[1] pagemap scan: {rows} distinct DRAM rows owned")
    print(f"[2] hammer target: bank {triple.bank_key}, victim row "
          f"{triple.victim_row} (aggressors {triple.victim_row - 1} and "
          f"{triple.victim_row + 1})")

    # Step 3: eviction sets.
    ways = memsys.hierarchy.llc.config.ways
    set_x = build_eviction_set(memsys, triple.aggressor_low_vaddr, base, BUFFER)
    print(f"[3] eviction set for aggressor: {len(set_x)} conflicting "
          f"addresses (LLC is {ways}-way)")

    # Step 4: replacement-policy reverse engineering.
    probe_addrs = [triple.aggressor_low_vaddr] + set_x
    probe = identify_replacement_policy(machine, probe_addrs, rounds=30)
    print(f"[4] policy probe over {probe.accesses} accesses "
          f"(miss fraction {probe.observed_miss_fraction:.2f}):")
    for name, score in probe.ranking():
        marker = "  <-- best match" if name == probe.best else ""
        print(f"      {name:<10} agreement {score:5.1%}{marker}")

    # Step 5: plan the efficient pattern against the identified policy.
    pattern = efficient_bit_plru_pattern(ways)
    misses = pattern_miss_profile(pattern, probe.best, ways)
    cost = pattern_cost_cycles(pattern, len(misses))
    print(f"[5] pattern of {len(pattern)} accesses/set: steady-state "
          f"misses {misses} -> ~{cost} cycles/iteration "
          f"(paper estimates ~880)")

    # Step 6: run the attack end to end on a fresh machine.
    machine2 = small_machine(threshold_min=30_000)
    attack = ClflushFreeAttack(buffer_bytes=BUFFER)
    result = attack.run(machine2, max_ms=60)
    print(f"[6] attack: first flip after {result.min_row_accesses} aggressor "
          f"row accesses in {result.time_to_first_flip_ms:.1f} ms "
          f"({result.ns_per_iteration:.0f} ns per hammer pair) — no CLFLUSH used")


if __name__ == "__main__":
    main()
