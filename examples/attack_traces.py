#!/usr/bin/env python3
"""Figure 1: the memory access patterns of the CLFLUSH-based and
CLFLUSH-free double-sided rowhammer attacks, annotated with the simulated
hit/miss outcome of every operation.

Sequence (a) flushes the two aggressors after each access, so both always
miss to DRAM.  Sequence (b) replaces the flushes with the Bit-PLRU
eviction pattern: in steady state only the aggressor and one sacrificial
conflict address miss per set, everything else hits in the L3.

Usage:  python examples/attack_traces.py
"""

from repro import ClflushFreeAttack, DoubleSidedClflushAttack, small_machine
from repro.attacks.patterns import AGGRESSOR
from repro.sim import CLFLUSH, COMPUTE, LOAD, PAIR_LOAD
from repro.units import MB


def trace_clflush_attack() -> None:
    machine = small_machine(threshold_min=10**9)  # no flips: tracing only
    attack = DoubleSidedClflushAttack(buffer_bytes=16 * MB)
    attack.prepare(machine)
    row = {attack._a0: "row0", attack._a1: "row2"}  # noqa: SLF001 - demo

    print("Figure 1(a): double-sided rowhammer with CLFLUSH")
    print("  aggressors: rows", [c.row for c in attack.aggressor_coords],
          "| victim row:", attack.victim_coords[0].row)
    for iteration in range(3):
        line = []
        for op in attack.iteration_ops():
            kind, operand = op
            if kind == LOAD:
                record = machine.execute(op)
                line.append(f"LOAD A({row[operand]}) -> {record.level}")
            elif kind == CLFLUSH:
                machine.execute(op)
                line.append(f"CLFLUSH A({row[operand]})")
            elif kind == COMPUTE:
                machine.execute(op)
        print(f"  iter {iteration}: " + "; ".join(line))


def trace_clflush_free_attack() -> None:
    machine = small_machine(threshold_min=10**9)
    attack = ClflushFreeAttack(buffer_bytes=16 * MB)
    attack.prepare(machine)
    set_x, set_y = attack.eviction_sets

    def name(vaddr: int, aggressor: int, eset: list, prefix: str) -> str:
        if vaddr == aggressor:
            return f"A({prefix})"
        return f"{prefix.upper()}{eset.index(vaddr) + 1}"

    print("\nFigure 1(b): CLFLUSH-free double-sided rowhammer")
    print("  aggressors: rows", [c.row for c in attack.aggressor_coords],
          "| eviction sets: 12 conflicting addresses per aggressor")
    print("  pattern per set: A, X1..X10, X11, X1..X10, X12 "
          f"(symbols: {attack.pattern})")
    warmup = 3
    for iteration in range(warmup + 2):
        cells = []
        misses = []
        for op in attack.iteration_ops():
            if op[0] != PAIR_LOAD:
                machine.execute(op)
                continue
            va, vb = op[1]
            records = machine.execute(op)
            label_x = name(va, attack._a0, set_x, "x")  # noqa: SLF001
            label_y = name(vb, attack._a1, set_y, "y")  # noqa: SLF001
            outcome = f"{label_x}/{label_y}:{records[0].level}/{records[1].level}"
            cells.append(outcome)
            for record, label in ((records[0], label_x), (records[1], label_y)):
                if record.level == "DRAM":
                    misses.append(label)
        if iteration < warmup:
            continue  # skip cold-start iterations
        print(f"  iter {iteration} misses: {misses}")
        print("    " + " ".join(cells))
    print("  -> steady state: exactly A and X11/Y11 miss; "
          "every other access hits in L3, as Section 2.2 reports.")
    assert AGGRESSOR in attack.pattern


def main() -> None:
    trace_clflush_attack()
    trace_clflush_free_attack()


if __name__ == "__main__":
    main()
