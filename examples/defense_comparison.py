#!/usr/bin/env python3
"""Defense-comparison grid: every mitigation discussed in the paper
against the CLFLUSH-based and CLFLUSH-free double-sided attacks.

Reproduces the qualitative message of Sections 2 and 5: the deployed
mitigations (doubled refresh, banning CLFLUSH, restricting pagemap) each
fail against at least one attack, while ANVIL — and the proposed hardware
schemes it competes with — stop both.

Usage:  python examples/defense_comparison.py
"""

from __future__ import annotations

from repro import AnvilConfig, AnvilModule, small_machine
from repro.analysis import format_table
from repro.attacks import ClflushFreeAttack, DoubleSidedClflushAttack
from repro.defenses import Armor, Para, TargetedRowRefresh
from repro.errors import ClflushRestrictedError, PagemapRestrictedError
from repro.units import MB

THRESHOLD = 30_000
BUF = 16 * MB
MAX_MS = 25

DEMO_ANVIL = AnvilConfig(
    llc_miss_threshold=3_300, tc_ms=1.0, ts_ms=1.0,
    sampling_rate_hz=50_000, assumed_flip_accesses=30_000,
)


def run_case(defense_name: str, attack_cls) -> str:
    machine_kwargs = {"threshold_min": THRESHOLD}
    defense = None
    anvil = None
    if defense_name == "none":
        pass
    elif defense_name == "double refresh":
        machine_kwargs["refresh_scale"] = 2.0
    elif defense_name == "CLFLUSH ban":
        machine_kwargs["clflush_allowed"] = False
    elif defense_name == "pagemap restricted":
        machine_kwargs["pagemap_restricted"] = True
    elif defense_name == "PARA":
        defense = Para(probability=0.002)
    elif defense_name == "TRR":
        defense = TargetedRowRefresh(activation_threshold=1_000)
    elif defense_name == "ARMOR":
        defense = Armor(hot_threshold=1_000)

    machine = small_machine(**machine_kwargs)
    if defense is not None:
        defense.install(machine)
    if defense_name == "ANVIL":
        anvil = AnvilModule(machine, DEMO_ANVIL)
        anvil.install()

    attack = attack_cls(buffer_bytes=BUF)
    try:
        result = attack.run(machine, max_ms=MAX_MS, stop_on_flip=(anvil is None))
    except ClflushRestrictedError:
        return "blocked (SIGILL)"
    except PagemapRestrictedError:
        return "blocked (EPERM)"
    if result.flips:
        return f"FLIPS in {result.time_to_first_flip_ms:.1f} ms"
    if anvil is not None and anvil.stats.detection_count:
        return f"protected ({anvil.stats.detection_count} detections)"
    return "no flips"


def main() -> None:
    defenses = [
        "none", "double refresh", "CLFLUSH ban", "pagemap restricted",
        "PARA", "TRR", "ARMOR", "ANVIL",
    ]
    attacks = [
        ("CLFLUSH double-sided", DoubleSidedClflushAttack),
        ("CLFLUSH-free double-sided", ClflushFreeAttack),
    ]
    rows = []
    for defense_name in defenses:
        row = [defense_name]
        for _, attack_cls in attacks:
            row.append(run_case(defense_name, attack_cls))
        rows.append(row)
    print(format_table(
        ["defense"] + [name for name, _ in attacks],
        rows,
        title="Defense comparison (scaled demo machine; weak cells at "
              f"{THRESHOLD} disturbance units)",
    ))
    print(
        "\nReading: the deployed software mitigations each fail against at"
        "\nleast one attack (Sections 2.1-2.3); the hardware proposals and"
        "\nANVIL stop both, but only ANVIL deploys on existing machines."
        "\n(Pagemap restriction blocks these *implementations*, which use it"
        "\nfor targeting; Section 5.2.1 notes timing side channels and random"
        "\ntargeting still get through — see find_eviction_set_by_timing.)"
    )


if __name__ == "__main__":
    main()
